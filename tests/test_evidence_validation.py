"""Evidence validation, sanitisation and zero-probability structured errors."""

from __future__ import annotations

import math

import pytest

from repro.bayesnet.inference import (
    GibbsSampling,
    JunctionTree,
    LikelihoodWeighting,
    VariableElimination,
)
from repro.core import DiagnosticCase
from repro.core.evidence import (
    merge_case_evidence,
    sanitize_evidence,
    validate_evidence,
)
from repro.exceptions import EvidenceError, ImpossibleEvidenceError

#: Deterministically impossible evidence for the sprinkler network:
#: P(wet=1 | sprinkler=0, rain=0) is exactly 0.
IMPOSSIBLE = {"sprinkler": "0", "rain": "0", "wet": "1"}


class TestValidateEvidence:
    def test_clean_evidence_normalised(self, regulator_circuit):
        evidence = validate_evidence(regulator_circuit.model,
                                     {"reg1": 0, "vp1": "2"})
        assert evidence == {"reg1": "0", "vp1": "2"}

    def test_unknown_variable_collected(self, regulator_circuit):
        with pytest.raises(EvidenceError) as info:
            validate_evidence(regulator_circuit.model, {"bogus": "0"})
        (issue,) = info.value.issues
        assert issue.kind == "unknown-variable"
        assert issue.variable == "bogus"

    def test_unknown_state_collected(self, regulator_circuit):
        with pytest.raises(EvidenceError) as info:
            validate_evidence(regulator_circuit.model, {"reg1": "99"})
        (issue,) = info.value.issues
        assert issue.kind == "unknown-state"
        assert "99" in issue.detail or issue.state == "99"

    def test_all_defects_reported_at_once(self, regulator_circuit):
        with pytest.raises(EvidenceError) as info:
            validate_evidence(regulator_circuit.model,
                              {"bogus": "0", "reg1": "99", "vp1": "2"})
        kinds = sorted(issue.kind for issue in info.value.issues)
        assert kinds == ["unknown-state", "unknown-variable"]


class TestSanitizeEvidence:
    def test_clean_evidence_untouched(self, regulator_circuit):
        clean, issues = sanitize_evidence(regulator_circuit.model,
                                          {"reg1": "0", "vp1": "2"})
        assert clean == {"reg1": "0", "vp1": "2"}
        assert issues == ()

    def test_unknown_variable_dropped(self, regulator_circuit):
        clean, issues = sanitize_evidence(regulator_circuit.model,
                                          {"bogus": "0", "vp1": "2"})
        assert clean == {"vp1": "2"}
        assert [issue.kind for issue in issues] == ["unknown-variable"]

    def test_whitespace_and_index_repaired(self, regulator_circuit):
        reg1_labels = regulator_circuit.model.state_table("reg1").labels
        clean, issues = sanitize_evidence(
            regulator_circuit.model, {"vp1": " 2 ", "reg1": 0})
        assert clean["vp1"] == "2"
        assert clean["reg1"] == reg1_labels[0]
        assert all(issue.kind == "repaired-state" for issue in issues)

    def test_hopeless_state_dropped(self, regulator_circuit):
        clean, issues = sanitize_evidence(regulator_circuit.model,
                                          {"vp1": "not-a-state"})
        assert clean == {}
        assert [issue.kind for issue in issues] == ["unknown-state"]


class TestConflictingEntries:
    def test_merge_conflict_raises(self):
        with pytest.raises(EvidenceError) as info:
            merge_case_evidence({"vp1": "2"}, {"vp1": "0"})
        (issue,) = info.value.issues
        assert issue.kind == "conflicting-entry"
        assert issue.variable == "vp1"

    def test_agreeing_duplicate_merges(self):
        assert merge_case_evidence({"vp1": "2"}, {"vp1": "2"}) == {"vp1": "2"}

    def test_case_evidence_detects_conflict(self):
        case = DiagnosticCase(name="poisoned",
                              controllable_states={"vp1": "2"},
                              observable_states={"vp1": "0"})
        with pytest.raises(EvidenceError):
            case.evidence()
        # The unchecked accessor still works for logging.
        assert case.raw_evidence() == {"vp1": "0"}


def _assert_no_nan(posteriors: dict) -> None:
    for distribution in posteriors.values():
        for probability in distribution.values():
            assert math.isfinite(probability)


class TestZeroProbabilityEvidence:
    """All four engines refuse impossible evidence with a structured error."""

    def test_variable_elimination(self, sprinkler_network):
        engine = VariableElimination(sprinkler_network)
        with pytest.raises(ImpossibleEvidenceError) as info:
            engine.posteriors(["cloudy"], IMPOSSIBLE)
        assert info.value.evidence == IMPOSSIBLE
        with pytest.raises(ImpossibleEvidenceError):
            engine.posterior("cloudy", IMPOSSIBLE)
        with pytest.raises(ImpossibleEvidenceError):
            engine.query(["cloudy"], IMPOSSIBLE)

    def test_junction_tree(self, sprinkler_network):
        engine = JunctionTree(sprinkler_network)
        with pytest.raises(ImpossibleEvidenceError) as info:
            engine.posteriors(["cloudy"], IMPOSSIBLE)
        assert info.value.evidence == IMPOSSIBLE

    def test_likelihood_weighting(self, sprinkler_network):
        engine = LikelihoodWeighting(sprinkler_network, num_samples=500, seed=0)
        with pytest.raises(ImpossibleEvidenceError):
            engine.posteriors(["cloudy"], IMPOSSIBLE)
        assert engine.last_effective_sample_size == 0.0

    def test_gibbs(self, sprinkler_network):
        engine = GibbsSampling(sprinkler_network, num_samples=100,
                               burn_in=10, seed=0)
        with pytest.raises(ImpossibleEvidenceError):
            engine.posteriors(["cloudy"], IMPOSSIBLE)

    def test_possible_evidence_still_clean(self, sprinkler_network):
        """The zero-probability guards do not fire on valid evidence."""
        evidence = {"sprinkler": "0", "rain": "1", "wet": "1"}
        for engine in (VariableElimination(sprinkler_network),
                       JunctionTree(sprinkler_network),
                       LikelihoodWeighting(sprinkler_network,
                                           num_samples=2000, seed=1),
                       GibbsSampling(sprinkler_network, num_samples=200,
                                     burn_in=20, seed=1)):
            posteriors = engine.posteriors(["cloudy"], evidence)
            _assert_no_nan(posteriors)
            total = sum(posteriors["cloudy"].values())
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_lw_effective_sample_size_tracked(self, sprinkler_network):
        engine = LikelihoodWeighting(sprinkler_network, num_samples=1000, seed=0)
        engine.posteriors(["cloudy"], {"wet": "1"})
        ess = engine.last_effective_sample_size
        assert ess is not None and 0 < ess <= 1000
