"""Tests for the BayesianNetwork container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesnet import BayesianNetwork, TabularCPD
from repro.exceptions import NetworkError


class TestModelChecking:
    def test_check_model_passes(self, sprinkler_network):
        assert sprinkler_network.check_model()

    def test_missing_cpd_detected(self):
        network = BayesianNetwork([("a", "b")])
        network.add_cpd(TabularCPD("a", 2, [[0.5], [0.5]]))
        with pytest.raises(NetworkError):
            network.check_model()

    def test_wrong_parents_rejected(self):
        network = BayesianNetwork([("a", "b")])
        with pytest.raises(NetworkError):
            network.add_cpd(TabularCPD("b", 2, [[0.5], [0.5]]))

    def test_inconsistent_cardinality_detected(self):
        network = BayesianNetwork([("a", "b")])
        network.add_cpd(TabularCPD("a", 3, [[0.2], [0.3], [0.5]]))
        network.add_cpd(TabularCPD("b", 2, [[0.5, 0.5], [0.5, 0.5]], ["a"], [2]))
        with pytest.raises(NetworkError):
            network.check_model()

    def test_unknown_node_cpd_rejected(self, sprinkler_network):
        with pytest.raises(NetworkError):
            sprinkler_network.add_cpd(TabularCPD("mystery", 2, [[0.5], [0.5]]))


class TestJointProbability:
    def test_joint_probability_product_rule(self, sprinkler_network):
        probability = sprinkler_network.joint_probability(
            {"cloudy": 0, "sprinkler": 0, "rain": 0, "wet": 0})
        assert np.isclose(probability, 0.5 * 0.5 * 0.8 * 1.0)

    def test_joint_distribution_sums_to_one(self, sprinkler_network):
        joint = sprinkler_network.joint_distribution()
        assert np.isclose(joint.values.sum(), 1.0)

    def test_log_likelihood_matches_joint(self, sprinkler_network):
        case = {"cloudy": 1, "sprinkler": 0, "rain": 1, "wet": 1}
        expected = np.log(sprinkler_network.joint_probability(case))
        assert np.isclose(sprinkler_network.log_likelihood([case]), expected)


class TestUtilities:
    def test_markov_blanket(self, sprinkler_network):
        blanket = sprinkler_network.markov_blanket("sprinkler")
        assert blanket == {"cloudy", "wet", "rain"}

    def test_copy_independence(self, sprinkler_network):
        clone = sprinkler_network.copy()
        clone.get_cpd("cloudy").table[0, 0] = 0.99
        assert sprinkler_network.get_cpd("cloudy").table[0, 0] == 0.5

    def test_with_uniform_cpds(self, sprinkler_network):
        uniform = sprinkler_network.with_uniform_cpds(
            {node: 2 for node in sprinkler_network.nodes})
        uniform.check_model()
        assert np.allclose(uniform.get_cpd("wet").table, 0.5)

    def test_state_names_and_cardinality(self, sprinkler_network):
        assert sprinkler_network.cardinality("wet") == 2
        assert sprinkler_network.state_names("wet") == ["0", "1"]
