"""Tests for tabular CPDs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesnet.cpd import TabularCPD, random_cpd, uniform_cpd
from repro.exceptions import CPDError


class TestValidation:
    def test_columns_must_sum_to_one(self):
        with pytest.raises(CPDError):
            TabularCPD("a", 2, [[0.7, 0.2], [0.7, 0.8]], ["p"], [2])

    def test_negative_probability_rejected(self):
        with pytest.raises(CPDError):
            TabularCPD("a", 2, [[-0.1], [1.1]])

    def test_wrong_shape_rejected(self):
        with pytest.raises(CPDError):
            TabularCPD("a", 2, [[0.5, 0.5], [0.5, 0.5]], ["p"], [3])

    def test_self_parent_rejected(self):
        with pytest.raises(CPDError):
            TabularCPD("a", 2, [[0.5, 0.5], [0.5, 0.5]], ["a"], [2])

    def test_state_name_length_checked(self):
        with pytest.raises(CPDError):
            TabularCPD("a", 2, [[0.5], [0.5]], state_names={"a": ["only"]})

    def test_one_dimensional_root_table_accepted(self):
        cpd = TabularCPD("a", 3, [0.2, 0.3, 0.5])
        assert cpd.table.shape == (3, 1)


class TestQueries:
    def make_cpd(self) -> TabularCPD:
        return TabularCPD("child", 2,
                          [[0.9, 0.6, 0.3, 0.1], [0.1, 0.4, 0.7, 0.9]],
                          ["p1", "p2"], [2, 2],
                          state_names={"child": ["ok", "bad"],
                                       "p1": ["lo", "hi"],
                                       "p2": ["lo", "hi"]})

    def test_parent_configuration_index_last_parent_fastest(self):
        cpd = self.make_cpd()
        assert cpd.parent_configuration_index({"p1": "lo", "p2": "lo"}) == 0
        assert cpd.parent_configuration_index({"p1": "lo", "p2": "hi"}) == 1
        assert cpd.parent_configuration_index({"p1": "hi", "p2": "lo"}) == 2
        assert cpd.parent_configuration_index({"p1": "hi", "p2": "hi"}) == 3

    def test_distribution_and_probability(self):
        cpd = self.make_cpd()
        distribution = cpd.distribution({"p1": "hi", "p2": "lo"})
        assert np.isclose(distribution["ok"], 0.3)
        assert np.isclose(cpd.probability("bad", {"p1": "hi", "p2": "lo"}), 0.7)

    def test_probability_by_index(self):
        cpd = self.make_cpd()
        assert np.isclose(cpd.probability(0, {"p1": 0, "p2": 0}), 0.9)

    def test_missing_parent_raises(self):
        with pytest.raises(CPDError):
            self.make_cpd().parent_configuration_index({"p1": "lo"})

    def test_unknown_state_raises(self):
        with pytest.raises(CPDError):
            self.make_cpd().probability("nope", {"p1": "lo", "p2": "lo"})

    def test_to_factor_round_trip(self):
        cpd = self.make_cpd()
        factor = cpd.to_factor()
        for p1 in ("lo", "hi"):
            for p2 in ("lo", "hi"):
                for child in ("ok", "bad"):
                    assert np.isclose(
                        factor.get({"child": child, "p1": p1, "p2": p2}),
                        cpd.probability(child, {"p1": p1, "p2": p2}))

    def test_copy_and_is_close_to(self):
        cpd = self.make_cpd()
        assert cpd.is_close_to(cpd.copy())


class TestFactories:
    def test_uniform_cpd(self):
        cpd = uniform_cpd("a", 4, ["p"], [3])
        assert np.allclose(cpd.table, 0.25)

    def test_random_cpd_columns_normalised(self):
        cpd = random_cpd("a", 3, ["p"], [4], rng=np.random.default_rng(0))
        assert np.allclose(cpd.table.sum(axis=0), 1.0)
