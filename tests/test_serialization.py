"""Serialization contracts: pickling across process boundaries, JSON out.

The worker-pool service ships cases, results and errors through
``multiprocessing`` pipes, so every exception in :mod:`repro.exceptions`
(and the structured result records) must survive a pickle round trip with
its payload attributes intact — an exception that loses its ``attempts``
trail in transit silently destroys the service's audit guarantees.
``to_dict()`` is the other boundary: service responses and structured logs
must serialise with a plain ``json.dumps``, no custom encoder.
"""

from __future__ import annotations

import inspect
import json
import pickle

import pytest

import repro.exceptions as exceptions_module
from repro.core import Dlog2BBN, FallbackPolicy, RobustDiagnosisEngine
from repro.core.diagnosis import (
    AttemptRecord,
    Diagnosis,
    DiagnosisFailure,
    DiagnosisProvenance,
)
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
from repro.core.robust import FallbackExhaustedError
from repro.exceptions import (
    DeadlineExceededError,
    EvidenceError,
    ImpossibleEvidenceError,
    InferenceTimeoutError,
    ReproError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from repro.serving.stats import ServiceStats
from repro.testing import ChaosError

CASE = PAPER_DIAGNOSTIC_CASES[0]


@pytest.fixture(scope="module")
def built_model(regulator_circuit):
    builder = Dlog2BBN(regulator_circuit.model,
                       regulator_circuit.healthy_states)
    return builder.build()


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


# ---------------------------------------------------------------------------
# Exceptions through the pipe
# ---------------------------------------------------------------------------

def all_exception_classes():
    """Every concrete exception type the library can raise."""
    classes = [cls for _, cls in inspect.getmembers(exceptions_module,
                                                    inspect.isclass)
               if issubclass(cls, ReproError)]
    classes.extend([FallbackExhaustedError, ChaosError])
    return sorted(set(classes), key=lambda cls: cls.__name__)


class TestExceptionPickling:
    @pytest.mark.parametrize("cls", all_exception_classes(),
                             ids=lambda cls: cls.__name__)
    def test_every_exception_roundtrips(self, cls):
        error = cls("boom")
        clone = roundtrip(error)
        assert type(clone) is cls
        assert str(clone) == str(error)
        assert clone.args == error.args

    def test_payload_attributes_survive(self):
        cases = [
            ImpossibleEvidenceError("x", evidence={"v": "fail"}),
            InferenceTimeoutError("x", engine="ve", deadline=1.5),
            DeadlineExceededError("x", remaining=-0.25, deadline=3.0),
            ServiceOverloadedError("x", pending=99, limit=10),
            WorkerCrashError("x", attempts=4),
            EvidenceError("x", issues=(("unknown-variable", "v", "why"),)),
            FallbackExhaustedError(
                "x", attempts=(AttemptRecord("ve", "error", 0.1, "E: e"),),
                wall_time=0.5),
        ]
        for error in cases:
            clone = roundtrip(error)
            assert type(clone) is type(error)
            assert clone.__dict__ == error.__dict__, type(error).__name__

    def test_dynamic_attributes_survive(self):
        # The robust engine attaches the attempt trail to errors it did not
        # construct itself; the trail must ride through the pipe too.
        error = DeadlineExceededError("budget spent", remaining=-0.1,
                                      deadline=1.0)
        error.attempts = (AttemptRecord("ve", "timeout", 1.0,
                                        "InferenceTimeoutError: t"),)
        error.wall_time = 1.23
        clone = roundtrip(error)
        assert clone.attempts == error.attempts
        assert clone.wall_time == pytest.approx(1.23)
        assert clone.remaining == pytest.approx(-0.1)

    def test_caught_and_reraised_clone_behaves(self):
        clone = roundtrip(ServiceOverloadedError("full", pending=7, limit=5))
        with pytest.raises(ServiceOverloadedError) as excinfo:
            raise clone
        assert excinfo.value.pending == 7


# ---------------------------------------------------------------------------
# Structured results through the pipe
# ---------------------------------------------------------------------------

class TestResultPickling:
    def test_diagnosis_failure_roundtrips(self):
        failure = DiagnosisFailure.from_exception(
            "dev-1", {"v_out": "fail"}, WorkerCrashError("died", attempts=3),
            attempts=(AttemptRecord("ve", "error", 0.2, "boom"),),
            wall_time=0.7)
        clone = roundtrip(failure)
        assert clone == failure
        assert clone.attempts[0].engine == "ve"

    def test_provenance_roundtrips(self):
        provenance = DiagnosisProvenance(
            engine="lw",
            attempts=(AttemptRecord("ve", "timeout", 1.0, "t"),
                      AttemptRecord("lw", "ok", 0.3)),
            wall_time=1.4, degraded=True, effective_sample_size=210.5,
            notes=("degraded from 've' to 'lw'",))
        clone = roundtrip(provenance)
        assert clone == provenance

    def test_real_diagnosis_roundtrips(self, built_model):
        engine = RobustDiagnosisEngine(built_model, FallbackPolicy())
        diagnosis = engine.diagnose(CASE)
        clone = roundtrip(diagnosis)
        assert clone.case_name == diagnosis.case_name
        assert clone.posteriors == diagnosis.posteriors
        assert clone.ranked_candidates == diagnosis.ranked_candidates
        assert clone.provenance.engine == diagnosis.provenance.engine


# ---------------------------------------------------------------------------
# JSON-safe to_dict()
# ---------------------------------------------------------------------------

class TestToDict:
    def test_diagnosis_to_dict_is_json_safe(self, built_model):
        engine = RobustDiagnosisEngine(built_model, FallbackPolicy())
        payload = engine.diagnose(CASE).to_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded["ok"] is True
        assert decoded["case_name"] == CASE.name
        assert decoded["provenance"]["engine"]
        ranked = decoded["ranked_candidates"]
        assert ranked and isinstance(ranked[0][0], str)
        assert all(isinstance(probability, float)
                   for _, probability in ranked)
        for distribution in decoded["posteriors"].values():
            assert abs(sum(distribution.values()) - 1.0) < 1e-6

    def test_failure_to_dict_is_json_safe(self):
        failure = DiagnosisFailure.from_exception(
            "dev-2", {"v_out": "fail"},
            DeadlineExceededError("late", remaining=-0.5, deadline=1.0),
            attempts=(AttemptRecord("ve", "timeout", 1.0, "t"),))
        decoded = json.loads(json.dumps(failure.to_dict()))
        assert decoded["ok"] is False
        assert decoded["error_type"] == "DeadlineExceededError"
        assert decoded["attempts"][0]["outcome"] == "timeout"

    def test_provenance_to_dict_round_trips_values(self):
        provenance = DiagnosisProvenance(
            engine="gibbs", attempts=(AttemptRecord("gibbs", "ok", 0.2),),
            wall_time=0.2, degraded=True, effective_sample_size=77.0,
            notes=("low ESS",))
        decoded = json.loads(json.dumps(provenance.to_dict()))
        assert decoded == {
            "engine": "gibbs",
            "attempts": [{"engine": "gibbs", "outcome": "ok",
                          "elapsed": 0.2, "error": None}],
            "wall_time": 0.2,
            "degraded": True,
            "effective_sample_size": 77.0,
            "evidence_issues": [],
            "notes": ["low ESS"],
        }

    def test_stats_to_dict_is_json_safe(self):
        stats = ServiceStats(
            workers=2, workers_alive=2, workers_quarantined=0, queue_depth=0,
            in_flight=4, submitted=10, completed=6, failed=0, shed=1,
            chunk_retries=2, respawns=1, probes=0, chunk_latency_p50=0.01,
            chunk_latency_p99=None, uptime=3.5)
        decoded = json.loads(json.dumps(stats.to_dict()))
        assert decoded["in_flight"] == 4
        assert decoded["chunk_latency_p99"] is None
