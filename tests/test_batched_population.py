"""Batched-vs-scalar equivalence suite for the device-population pipeline.

The batched simulate→test→discretise→case path must be a drop-in replacement
for the scalar one: with the same seeds (and explicit multipliers, so both
paths consume the random stream in the same order) the batch reproduces the
scalar results to 1e-12, populations are deterministic under a fixed seed,
and masked-fault re-draws keep the scalar retry semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ate import ATETester, PopulationGenerator
from repro.bayesnet import VariableElimination
from repro.circuits import BehavioralSimulator, BlockFault, FaultMode
from repro.circuits.components import BehaviouralBlock
from repro.core import CaseGenerator
from repro.exceptions import ATEError


def make_simulator(circuit, seed, noise=0.01):
    return BehavioralSimulator(circuit.netlist, measurement_noise=noise,
                               process_variation=circuit.process_variation,
                               seed=seed)


def all_mode_faults(circuit):
    """One fault map per device covering every mode plus a healthy device."""
    blocks = circuit.fault_universe.faultable_blocks
    fault_maps = [None]
    for index, mode in enumerate(FaultMode):
        block = blocks[index % len(blocks)]
        severity = 0.6 if mode in (FaultMode.DEGRADED, FaultMode.DRIFT) else 1.0
        fault_maps.append({block: BlockFault(block, mode, severity)})
    return fault_maps


class TestRunBatchEquivalence:
    def test_noiseless_batch_matches_scalar(self, regulator_circuit):
        simulator = make_simulator(regulator_circuit, seed=1, noise=0.0)
        fault_maps = all_mode_faults(regulator_circuit)
        count = len(fault_maps)
        multipliers = simulator.sample_devices(count)
        conditions = regulator_circuit.nominal_conditions
        batch = simulator.run_batch(conditions, fault_maps, multipliers,
                                    noisy=False)
        names = simulator.netlist.block_names
        for device, faults in enumerate(fault_maps):
            per_block = dict(zip(names, multipliers[device]))
            scalar = simulator.run(conditions, faults, per_block, noisy=False)
            assert batch.device_voltages(device) == pytest.approx(
                scalar.voltages, abs=1e-12)

    def test_noisy_batch_matches_scalar_stream(self, regulator_circuit):
        """Same seed + explicit multipliers: bit-compatible noise draws."""
        fault_maps = all_mode_faults(regulator_circuit)
        count = len(fault_maps)
        multipliers = make_simulator(regulator_circuit, 3).sample_devices(count)
        conditions = regulator_circuit.nominal_conditions

        batch_sim = make_simulator(regulator_circuit, seed=5)
        batch = batch_sim.run_batch(conditions, fault_maps, multipliers)

        scalar_sim = make_simulator(regulator_circuit, seed=5)
        names = scalar_sim.netlist.block_names
        for device, faults in enumerate(fault_maps):
            per_block = dict(zip(names, multipliers[device]))
            scalar = scalar_sim.run(conditions, faults, per_block)
            assert batch.device_voltages(device) == pytest.approx(
                scalar.voltages, abs=1e-12)

    def test_sample_devices_matches_sample_device(self, regulator_circuit):
        batch_sim = make_simulator(regulator_circuit, seed=7)
        multipliers = batch_sim.sample_devices(10)
        scalar_sim = make_simulator(regulator_circuit, seed=7)
        names = scalar_sim.netlist.block_names
        for device in range(10):
            scalar = scalar_sim.sample_device()
            assert dict(zip(names, multipliers[device])) == pytest.approx(
                scalar, abs=1e-12)

    def test_generic_block_fallback_matches_scalar(self):
        """Custom blocks without a numpy override use the per-device loop."""
        from repro.circuits import BlockNetlist, SupplyInput

        class Doubler(BehaviouralBlock):
            def __init__(self, name, driver):
                super().__init__(name, inputs=[driver], vmax=20.0)
                self.driver = driver

            def nominal_output(self, inputs):
                return 2.0 * inputs[self.driver] + 0.25

        netlist = BlockNetlist("custom")
        netlist.add_blocks([SupplyInput("vin", default=1.0, vmax=20.0),
                            Doubler("out", "vin")])
        simulator = BehavioralSimulator(netlist, measurement_noise=0.0, seed=9)
        faults = [None, {"out": BlockFault("out", FaultMode.DEGRADED, 0.5)}]
        batch = simulator.run_batch({"vin": 3.0}, faults, noisy=False)
        for device, fault in enumerate(faults):
            scalar = simulator.run({"vin": 3.0}, fault, noisy=False)
            assert batch.device_voltages(device) == pytest.approx(
                scalar.voltages, abs=1e-12)

    def test_batch_size_required_without_context(self, regulator_circuit):
        simulator = make_simulator(regulator_circuit, seed=11)
        from repro.exceptions import CircuitError
        with pytest.raises(CircuitError):
            simulator.run_batch(regulator_circuit.nominal_conditions)
        batch = simulator.run_batch(regulator_circuit.nominal_conditions, size=4)
        assert batch.device_count == 4


class TestTesterEquivalence:
    def test_test_devices_matches_test_device(self, regulator_circuit,
                                              regulator_program):
        fault_maps = all_mode_faults(regulator_circuit)
        count = len(fault_maps)
        multipliers = make_simulator(regulator_circuit, 13).sample_devices(count)
        names = regulator_circuit.netlist.block_names
        device_ids = [f"EQ-{index}" for index in range(count)]

        batch_sim = make_simulator(regulator_circuit, seed=17)
        batch_tester = ATETester(batch_sim, regulator_program)
        batch_results = batch_tester.test_devices(device_ids, fault_maps,
                                                  multipliers)

        scalar_sim = make_simulator(regulator_circuit, seed=17)
        scalar_tester = ATETester(scalar_sim, regulator_program)
        for device, (device_id, faults) in enumerate(zip(device_ids, fault_maps)):
            per_block = dict(zip(names, multipliers[device]))
            scalar = scalar_tester.test_device(device_id, faults, per_block)
            batched = batch_results[device]
            assert batched.device_id == scalar.device_id
            assert batched.faults == scalar.faults
            assert batched.failed == scalar.failed
            assert len(batched.measurements) == len(scalar.measurements)
            for got, expected in zip(batched.measurements, scalar.measurements):
                assert got.test_number == expected.test_number
                assert got.block == expected.block
                assert got.value == pytest.approx(expected.value, abs=1e-12)
                assert got.passed == expected.passed
                assert dict(got.conditions) == dict(expected.conditions)

    def test_stop_on_fail_rejects_batch(self, regulator_circuit,
                                        regulator_program):
        simulator = make_simulator(regulator_circuit, seed=19)
        tester = ATETester(simulator, regulator_program, stop_on_fail=True)
        with pytest.raises(ATEError):
            tester.test_devices(["X-1"])

    def test_mismatched_fault_count_rejected(self, regulator_circuit,
                                             regulator_program):
        simulator = make_simulator(regulator_circuit, seed=23)
        tester = ATETester(simulator, regulator_program)
        with pytest.raises(ATEError):
            tester.test_devices(["A", "B"], [None])


class TestPopulationSemantics:
    def test_generate_is_deterministic(self, regulator_circuit,
                                       regulator_program):
        populations = []
        for _ in range(2):
            simulator = make_simulator(regulator_circuit, seed=29)
            generator = PopulationGenerator(
                simulator, regulator_program, regulator_circuit.fault_universe,
                regulator_circuit.block_weights, seed=31)
            populations.append(generator.generate(failed_count=15,
                                                  passing_count=5))
        first, second = populations
        assert first.device_ids == second.device_ids
        assert {d: f.label for d, f in first.ground_truth.items()} == \
            {d: f.label for d, f in second.ground_truth.items()}
        for left, right in zip(first.results, second.results):
            values_left = [m.value for m in left.measurements]
            values_right = [m.value for m in right.measurements]
            assert values_left == pytest.approx(values_right, abs=0.0)

    def test_masked_fault_redraw_parity(self, regulator_circuit,
                                        regulator_program):
        """Re-draw semantics: every accepted failed device observably fails."""
        simulator = make_simulator(regulator_circuit, seed=37)
        generator = PopulationGenerator(
            simulator, regulator_program, regulator_circuit.fault_universe,
            regulator_circuit.block_weights, seed=41)
        population = generator.generate(failed_count=40)
        assert len(population) == 40
        assert len(population.ground_truth) == 40
        # With 20 attempts per device a masked fault surviving is vanishingly
        # rare on this circuit; every device must fail at least one test and
        # carry exactly the ground-truth fault.
        for result in population.results:
            assert result.failed
            fault = population.ground_truth[result.device_id]
            assert result.faults == {fault.block: fault}

    def test_redraw_disabled_keeps_first_draw(self, regulator_circuit,
                                              regulator_program):
        simulator = make_simulator(regulator_circuit, seed=43)
        generator = PopulationGenerator(
            simulator, regulator_program, regulator_circuit.fault_universe,
            regulator_circuit.block_weights, seed=47)
        population = generator.generate(failed_count=30,
                                        require_observable_failure=False)
        # Without re-draws the device ids are exactly the first 30 draws.
        assert population.device_ids == [f"DEV-{i:05d}" for i in range(1, 31)]


class TestCaseGenerationEquivalence:
    def test_cases_from_results_matches_per_device(self, regulator_circuit,
                                                   regulator_population):
        generator = CaseGenerator(regulator_circuit.model)
        batched = generator.cases_from_results(regulator_population.results)
        scalar = []
        for result in regulator_population.results:
            scalar.extend(generator.cases_from_device_result(result))
        assert batched == scalar

    def test_only_failing_devices_filter(self, regulator_circuit,
                                         regulator_population):
        generator = CaseGenerator(regulator_circuit.model)
        batched = generator.cases_from_results(regulator_population.results,
                                               only_failing_devices=True)
        scalar = []
        for result in regulator_population.results:
            if result.failed:
                scalar.extend(generator.cases_from_device_result(result))
        assert batched == scalar

    def test_classify_array_matches_scalar(self, regulator_circuit):
        discretizer = regulator_circuit.model.discretizer()
        rng = np.random.default_rng(53)
        for variable in discretizer.variables:
            table = discretizer.table(variable)
            edges = [limit for state in table.states
                     for limit in (state.lower, state.upper)]
            values = np.concatenate([
                rng.uniform(-2.0, 30.0, size=200), np.array(edges)])
            batched = discretizer.classify_array(variable, values)
            assert batched == [discretizer.classify(variable, float(value))
                               for value in values]

    def test_classify_array_hypothetical(self, hypothetical_circuit):
        discretizer = hypothetical_circuit.model.discretizer()
        values = np.linspace(-1.0, 22.0, 113)
        for variable in discretizer.variables:
            assert discretizer.classify_array(variable, values) == [
                discretizer.classify(variable, float(value)) for value in values]


class TestEliminationOrderMemoisation:
    def test_heuristic_runs_once_per_free_set(self, regulator_built_model):
        calls = []

        def counting_heuristic(network, to_eliminate):
            from repro.bayesnet.inference.elimination_order import min_fill_order
            calls.append(frozenset(to_eliminate))
            return min_fill_order(network, to_eliminate)

        engine = VariableElimination(regulator_built_model.network,
                                     elimination_order=counting_heuristic)
        internal = regulator_built_model.description.internal_variables
        evidence_a = {"reg1": "0", "reg2": "1"}
        evidence_b = {"reg1": "2", "reg2": "0"}  # same free-variable set
        engine.posteriors(internal, evidence_a)
        engine.posteriors(internal, evidence_b)
        assert len(calls) == 1
        engine.posteriors(internal, {"reg1": "0", "reg3": "1"})
        assert len(calls) == 2

    def test_forward_only_probability_matches_full_sweep(
            self, regulator_built_model):
        engine = VariableElimination(regulator_built_model.network)
        evidence = {"reg1": "0", "reg2": "1", "sw": "1"}
        forward = engine.probability_of_evidence(evidence)
        fresh = VariableElimination(regulator_built_model.network)
        fresh.posteriors(["lcbg"], evidence)  # populates the full-sweep cache
        assert forward == pytest.approx(fresh.probability_of_evidence(evidence),
                                        rel=1e-12)
