"""Tests for the behavioural circuit substrate (components, netlist, simulator, faults)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import (
    BandgapReference,
    BehavioralSimulator,
    BlockFault,
    BlockNetlist,
    EnableGate,
    EnableSense,
    FaultMode,
    FaultUniverse,
    LinearRegulator,
    OrNode,
    PowerSwitch,
    ProcessVariation,
    SupplyInput,
    SupplyMonitor,
)
from repro.circuits.components import HEALTHY, BlockHealth
from repro.exceptions import CircuitError, FaultError


class TestComponents:
    def test_bandgap_needs_headroom(self):
        bandgap = BandgapReference("bg", supply="vp", headroom=3.0)
        assert bandgap.evaluate({"vp": 2.0}) < 0.5
        assert np.isclose(bandgap.evaluate({"vp": 10.0}), 1.2)

    def test_bandgap_enable_gating(self):
        bandgap = BandgapReference("bg", supply="vp", enable="en", headroom=3.0)
        assert bandgap.evaluate({"vp": 10.0, "en": 0.0}) < 0.5
        assert np.isclose(bandgap.evaluate({"vp": 10.0, "en": 3.3}), 1.2)

    def test_or_node_takes_maximum(self):
        node = OrNode("vx", pins=["p1", "p2"])
        assert np.isclose(node.evaluate({"p1": 0.2, "p2": 3.1}), 3.1)

    def test_or_node_requires_pins(self):
        with pytest.raises(CircuitError):
            OrNode("vx", pins=[])

    def test_enable_sense_needs_reference_window(self):
        sense = EnableSense("sen", or_net="vx", reference_net="ref")
        assert sense.evaluate({"vx": 3.0, "ref": 1.2}) > 2.5
        assert sense.evaluate({"vx": 3.0, "ref": 0.4}) < 1.0
        assert sense.evaluate({"vx": 0.2, "ref": 1.2}) < 1.0

    def test_supply_monitor_checks_supply_and_references(self):
        monitor = SupplyMonitor("warn", primary_reference="lc",
                                secondary_reference="hc", supply="vp",
                                supply_threshold=7.0)
        good = {"lc": 1.2, "hc": 1.2, "vp": 12.0}
        assert monitor.evaluate(good) > 2.5
        assert monitor.evaluate({**good, "vp": 5.0}) < 1.0
        assert monitor.evaluate({**good, "hc": 0.2}) < 1.0

    def test_enable_gate_requires_monitor_and_valid_pin(self):
        gate = EnableGate("en", pin="pin", monitor="warn")
        assert gate.evaluate({"pin": 2.2, "warn": 5.0}) > 2.5
        assert gate.evaluate({"pin": 2.2, "warn": 0.0}) < 1.0
        assert gate.evaluate({"pin": 0.1, "warn": 5.0}) < 1.0

    def test_regulator_tracks_reference(self):
        regulator = LinearRegulator("reg", supply="vp", reference="ref",
                                    enable=None, target=5.0)
        assert np.isclose(regulator.evaluate({"vp": 8.0, "ref": 1.2}), 5.0)
        drifted = regulator.evaluate({"vp": 20.0, "ref": 1.5})
        assert drifted > 5.5

    def test_regulator_dropout(self):
        regulator = LinearRegulator("reg", supply="vp", reference="ref",
                                    enable=None, target=5.0, dropout=1.0)
        assert np.isclose(regulator.evaluate({"vp": 4.0, "ref": 1.2}), 3.0)

    def test_regulator_disabled(self):
        regulator = LinearRegulator("reg", supply="vp", reference="ref",
                                    enable="en", target=5.0)
        assert regulator.evaluate({"vp": 8.0, "ref": 1.2, "en": 0.0}) < 0.5

    def test_power_switch_clamps(self):
        switch = PowerSwitch("sw", supply="vp", ignition="ign", enable="en",
                             clamp_level=14.5)
        assert np.isclose(switch.evaluate({"vp": 13.5, "ign": 13.5, "en": 5.0}), 12.8)
        assert np.isclose(switch.evaluate({"vp": 20.0, "ign": 20.0, "en": 5.0}), 14.5)
        assert switch.evaluate({"vp": 13.5, "ign": 13.5, "en": 0.0}) < 0.5

    def test_missing_input_raises(self):
        regulator = LinearRegulator("reg", supply="vp", reference="ref",
                                    enable=None, target=5.0)
        with pytest.raises(CircuitError):
            regulator.evaluate({"vp": 8.0})

    def test_fault_modes(self):
        bandgap = BandgapReference("bg", supply="vp", vmax=40.0)
        inputs = {"vp": 10.0}
        assert bandgap.evaluate(inputs, BlockHealth(False, "dead")) == 0.0
        assert bandgap.evaluate(inputs, BlockHealth(False, "stuck_high")) == 40.0
        assert bandgap.evaluate(inputs, BlockHealth(False, "degraded", 1.0)) < 0.5
        assert bandgap.evaluate(inputs, BlockHealth(False, "short_to_supply")) >= 10.0
        with pytest.raises(CircuitError):
            bandgap.evaluate(inputs, BlockHealth(False, "gremlins"))


class TestNetlist:
    def build(self) -> BlockNetlist:
        netlist = BlockNetlist("toy")
        netlist.add_blocks([
            SupplyInput("vp", default=10.0),
            BandgapReference("bg", supply="vp"),
            LinearRegulator("reg", supply="vp", reference="bg", enable=None,
                            target=5.0),
        ])
        return netlist

    def test_validate_and_order(self):
        netlist = self.build()
        netlist.validate()
        order = netlist.evaluation_order()
        assert order.index("vp") < order.index("bg") < order.index("reg")

    def test_duplicate_block_rejected(self):
        netlist = self.build()
        with pytest.raises(CircuitError):
            netlist.add_block(SupplyInput("vp"))

    def test_undriven_input_detected(self):
        netlist = BlockNetlist("broken")
        netlist.add_block(BandgapReference("bg", supply="missing"))
        with pytest.raises(CircuitError):
            netlist.validate()

    def test_readers_and_drivers(self):
        netlist = self.build()
        assert netlist.readers_of("bg") == ["reg"]
        assert netlist.drivers_of("reg") == ["vp", "bg"]
        assert netlist.primary_inputs() == ["vp"]
        assert netlist.primary_outputs() == ["reg"]

    def test_unknown_block_raises(self):
        with pytest.raises(CircuitError):
            self.build().block("nope")


class TestSimulator:
    def make_simulator(self, **kwargs) -> BehavioralSimulator:
        netlist = BlockNetlist("toy")
        netlist.add_blocks([
            SupplyInput("vp", default=10.0),
            BandgapReference("bg", supply="vp"),
            LinearRegulator("reg", supply="vp", reference="bg", enable=None,
                            target=5.0),
        ])
        return BehavioralSimulator(netlist, **kwargs)

    def test_noiseless_run_is_deterministic(self):
        simulator = self.make_simulator(measurement_noise=0.0, seed=1)
        first = simulator.run({"vp": 10.0}, noisy=False)
        second = simulator.run({"vp": 10.0}, noisy=False)
        assert first.voltages == second.voltages
        assert np.isclose(first.voltage("reg"), 5.0)

    def test_fault_injection_changes_output(self):
        simulator = self.make_simulator(measurement_noise=0.0)
        faulty = simulator.run({"vp": 10.0},
                               {"bg": BlockFault("bg", FaultMode.DEAD)},
                               noisy=False)
        assert faulty.voltage("reg") < 1.0

    def test_unknown_fault_block_raises(self):
        simulator = self.make_simulator()
        with pytest.raises(CircuitError):
            simulator.run({"vp": 10.0}, {"nope": BlockFault("nope", FaultMode.DEAD)})

    def test_process_variation_spreads_outputs(self):
        simulator = self.make_simulator(
            measurement_noise=0.0,
            process_variation=ProcessVariation(default_sigma=0.05), seed=3)
        outputs = []
        for _ in range(30):
            multipliers = simulator.sample_device()
            outputs.append(simulator.run({"vp": 10.0}, noisy=False,
                                         device_multipliers=multipliers).voltage("reg"))
        assert np.std(outputs) > 0.01

    def test_run_many(self):
        simulator = self.make_simulator(measurement_noise=0.0)
        results = simulator.run_many({"lo": {"vp": 4.0}, "hi": {"vp": 10.0}},
                                     noisy=False)
        assert results["lo"].voltage("reg") < results["hi"].voltage("reg")

    def test_missing_voltage_raises(self):
        simulator = self.make_simulator()
        result = simulator.run({"vp": 10.0})
        with pytest.raises(CircuitError):
            result.voltage("unknown")


class TestFaultUniverse:
    def test_enumerate_and_len(self):
        universe = FaultUniverse(["a", "b"],
                                 modes=(FaultMode.DEAD, FaultMode.DEGRADED),
                                 severities=(1.0, 0.5))
        faults = universe.enumerate()
        assert len(faults) == len(universe) == 2 * (1 + 2)

    def test_faults_of_unknown_block(self):
        universe = FaultUniverse(["a"])
        with pytest.raises(FaultError):
            universe.faults_of("zzz")

    def test_sampling_respects_weights(self):
        universe = FaultUniverse(["rare", "common"], modes=(FaultMode.DEAD,))
        samples = universe.sample_many(300, rng=5,
                                       block_weights={"rare": 0.01, "common": 1.0})
        common = sum(1 for fault in samples if fault.block == "common")
        assert common > 250

    def test_invalid_severity(self):
        with pytest.raises(FaultError):
            BlockFault("a", FaultMode.DEGRADED, severity=0.0)

    def test_fault_label(self):
        assert BlockFault("bg", FaultMode.DEAD).label == "bg:dead"


class TestProcessVariation:
    def test_multipliers_clipped(self):
        variation = ProcessVariation(default_sigma=0.5, clip=0.1)
        multipliers = variation.sample(["a", "b"], rng=7)
        assert all(0.9 <= value <= 1.1 for value in multipliers.values())

    def test_zero_sigma_is_exact(self):
        variation = ProcessVariation(default_sigma=0.0)
        assert variation.sample(["a"], rng=8)["a"] == 1.0

    def test_per_block_override(self):
        variation = ProcessVariation(default_sigma=0.0,
                                     per_block_sigma={"wild": 0.1})
        assert variation.sigma_of("wild") == 0.1
        assert variation.sigma_of("calm") == 0.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(CircuitError):
            ProcessVariation(default_sigma=-0.1)
