"""Tests for discrete factors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesnet.factor import DiscreteFactor, factor_product
from repro.exceptions import FactorError


def make_ab() -> DiscreteFactor:
    return DiscreteFactor(["a", "b"], [2, 3],
                          [[0.1, 0.2, 0.3], [0.4, 0.5, 0.6]])


class TestConstruction:
    def test_shape_and_values(self):
        factor = make_ab()
        assert factor.values.shape == (2, 3)
        assert factor.cardinality("b") == 3

    def test_default_state_names(self):
        factor = make_ab()
        assert factor.state_names["b"] == ["0", "1", "2"]

    def test_wrong_size_rejected(self):
        with pytest.raises(FactorError):
            DiscreteFactor(["a"], [2], [0.1, 0.2, 0.3])

    def test_negative_values_rejected(self):
        with pytest.raises(FactorError):
            DiscreteFactor(["a"], [2], [-0.1, 1.1])

    def test_duplicate_variables_rejected(self):
        with pytest.raises(FactorError):
            DiscreteFactor(["a", "a"], [2, 2], np.ones(4))

    def test_state_name_mismatch_rejected(self):
        with pytest.raises(FactorError):
            DiscreteFactor(["a"], [2], [0.5, 0.5], {"a": ["only_one"]})


class TestOperations:
    def test_marginalize(self):
        factor = make_ab()
        marginal = factor.marginalize(["b"])
        assert marginal.variables == ["a"]
        assert np.allclose(marginal.values, [0.6, 1.5])

    def test_marginalize_unknown_raises(self):
        with pytest.raises(FactorError):
            make_ab().marginalize(["zzz"])

    def test_reduce(self):
        factor = make_ab()
        reduced = factor.reduce({"b": "1"})
        assert reduced.variables == ["a"]
        assert np.allclose(reduced.values, [0.2, 0.5])

    def test_reduce_by_index(self):
        factor = make_ab()
        assert np.allclose(factor.reduce({"b": 1}).values, [0.2, 0.5])

    def test_normalize(self):
        normalised = make_ab().normalize()
        assert np.isclose(normalised.values.sum(), 1.0)

    def test_normalize_zero_factor_raises(self):
        factor = DiscreteFactor(["a"], [2], [0.0, 0.0])
        with pytest.raises(FactorError):
            factor.normalize()

    def test_product_disjoint(self):
        left = DiscreteFactor(["a"], [2], [0.4, 0.6])
        right = DiscreteFactor(["b"], [2], [0.3, 0.7])
        product = left.product(right)
        assert set(product.variables) == {"a", "b"}
        assert np.isclose(product.get({"a": 0, "b": 1}), 0.4 * 0.7)

    def test_product_shared_variable(self):
        left = make_ab()
        right = DiscreteFactor(["b"], [3], [1.0, 2.0, 3.0])
        product = left.product(right)
        assert np.isclose(product.get({"a": 1, "b": 2}), 0.6 * 3.0)

    def test_product_commutes(self):
        left = make_ab()
        right = DiscreteFactor(["b", "c"], [3, 2], np.arange(6) + 1.0)
        assert left.product(right).is_close_to(right.product(left))

    def test_product_state_name_mismatch_raises(self):
        left = DiscreteFactor(["a"], [2], [0.5, 0.5], {"a": ["x", "y"]})
        right = DiscreteFactor(["a"], [2], [0.5, 0.5], {"a": ["p", "q"]})
        with pytest.raises(FactorError):
            left.product(right)

    def test_maximize(self):
        factor = make_ab()
        maxed = factor.maximize(["b"])
        assert np.allclose(maxed.values, [0.3, 0.6])

    def test_divide(self):
        factor = make_ab()
        marginal = factor.marginalize(["b"])
        ratio = factor.divide(marginal)
        assert np.isclose(ratio.get({"a": 0, "b": 0}), 0.1 / 0.6)

    def test_argmax(self):
        assert make_ab().argmax() == {"a": "1", "b": "2"}

    def test_to_distribution_requires_single_variable(self):
        with pytest.raises(FactorError):
            make_ab().to_distribution()

    def test_get_missing_variable_raises(self):
        with pytest.raises(FactorError):
            make_ab().get({"a": 0})

    def test_factor_product_empty(self):
        neutral = factor_product([])
        assert neutral.variables == []
        assert float(neutral.values) == 1.0

    def test_factor_product_many(self):
        factors = [DiscreteFactor([name], [2], [0.5, 0.5]) for name in "abc"]
        product = factor_product(factors)
        assert np.isclose(product.values.sum(), 1.0)
