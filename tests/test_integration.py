"""End-to-end integration tests: simulate -> test -> datalog -> learn -> diagnose."""

from __future__ import annotations

import pytest

from repro.ate import ATETester, PopulationGenerator, parse_datalog, write_datalog
from repro.ate.programs import HYPOTHETICAL_CONDITION_SETS, build_functional_program
from repro.circuits import BehavioralSimulator, BlockFault, FaultMode
from repro.core import CaseGenerator, DiagnosisEngine, DiagnosisMetrics, Dlog2BBN
from repro.core.behavioral_prior import SimulationPriorBuilder


class TestHypotheticalEndToEnd:
    """The Fig. 1 circuit: the whole pipeline on the paper's teaching example."""

    @pytest.fixture(scope="class")
    def built(self, hypothetical_circuit, hypothetical_program):
        simulator = BehavioralSimulator(hypothetical_circuit.netlist, seed=41)
        generator = PopulationGenerator(simulator, hypothetical_program,
                                        hypothetical_circuit.fault_universe,
                                        seed=42)
        population = generator.generate(failed_count=40, passing_count=10)
        builder = Dlog2BBN(hypothetical_circuit.model,
                           hypothetical_circuit.healthy_states)
        prior = SimulationPriorBuilder(
            hypothetical_circuit.netlist, hypothetical_circuit.model,
            [cs.conditions for cs in HYPOTHETICAL_CONDITION_SETS],
            fault_probability=0.15, samples=1000, seed=43).build()
        cases = builder.case_generator().cases_from_results(population.results)
        return builder.build(cases, method="bayes", prior_network=prior,
                             equivalent_sample_size=20)

    def test_block3_fault_is_diagnosed(self, hypothetical_circuit, built):
        # Block-3 dead: Block-2 still operational, Block-4 dead.
        engine = DiagnosisEngine(built)
        diagnosis = engine.diagnose_evidence(
            {"block1": "2", "block2": "1", "block4": "0"})
        assert diagnosis.top_candidate() == "block3"

    def test_block4_fault_not_blamed_on_block3(self, hypothetical_circuit, built):
        # When Block-4 alone is dead, Block-3 cannot be ruled out (it is not
        # observable) but the CPTs learned from the population should rank
        # block3 and block4 as the only plausible candidates.
        engine = DiagnosisEngine(built)
        diagnosis = engine.diagnose_evidence(
            {"block1": "2", "block2": "1", "block4": "0"})
        assert set(candidate for candidate, _ in diagnosis.ranked_candidates[:1]) <= {
            "block3", "block4"}


class TestRegulatorEndToEnd:
    def test_datalog_round_trip_preserves_diagnosis(self, tmp_path,
                                                    regulator_circuit,
                                                    regulator_program,
                                                    regulator_engine):
        simulator = BehavioralSimulator(
            regulator_circuit.netlist,
            process_variation=regulator_circuit.process_variation, seed=51)
        tester = ATETester(simulator, regulator_program)
        fault = BlockFault("enb13", FaultMode.DEAD)
        result = tester.test_device("RET-1", faults={"enb13": fault})
        assert result.failed

        # Route the device through the ASCII datalog (the Dlog2BBN path).
        path = write_datalog([result.to_datalog()], tmp_path / "returns.log")
        datalog = parse_datalog(path)[0]
        generator = CaseGenerator(regulator_circuit.model)
        cases = generator.cases_from_datalog(datalog)
        failing_case = next(case for case in cases if case.failed)
        diagnosis = regulator_engine.diagnose_evidence(failing_case.observed())
        assert "enb13" in diagnosis.suspects

    def test_injected_fault_population_metrics(self, regulator_circuit,
                                               regulator_population,
                                               regulator_engine):
        generator = CaseGenerator(regulator_circuit.model)
        internal = set(regulator_circuit.model.internal_variables)
        metrics = DiagnosisMetrics()
        for result in regulator_population.failing_results:
            if metrics.total >= 10:
                break
            true_block = regulator_population.ground_truth[result.device_id].block
            if true_block not in internal:
                # Faults in observable blocks are read straight off the ATE
                # response; block-level diagnosis ranks the internal blocks.
                continue
            cases = generator.cases_from_device_result(result)
            failing = [case for case in cases if case.failed]
            if not failing:
                continue
            diagnosis = regulator_engine.diagnose_evidence(failing[0].observed())
            metrics.record(diagnosis, true_block)
        summary = metrics.summary()
        assert summary["devices"] > 0
        # This integration test checks the pipeline end to end on a handful
        # of devices; the statistical quality bars (against the chance level
        # of 8 internal candidates) live in the accuracy benchmark.
        assert 1.0 <= summary["mean_rank"] <= 8.0
        assert 0.0 <= summary["suspect_recall"] <= 1.0

    def test_quickstart_docstring_flow(self, regulator_circuit, regulator_prior):
        # The module-level quickstart (repro.__init__) must keep working.
        builder = Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)
        built = builder.build(prior_network=regulator_prior)
        engine = DiagnosisEngine(built)
        from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
        diagnosis = engine.diagnose(PAPER_DIAGNOSTIC_CASES[1])
        assert diagnosis.suspects == ["enb13"]
