"""Validation against the paper's published evaluation data (Tables VI and VII).

Two layers of reproduction are tested:

1. *Method validation*: the automated candidate deduction, fed the paper's own
   published posterior probabilities (Table VII), must reproduce the suspect
   list the authors deduce manually for every case d1–d5.
2. *End-to-end reproduction*: the full pipeline (behavioural circuit,
   simulation-derived designer prior, evidence entry, deduction) must point at
   the paper's suspect blocks — exactly for d2/d3/d4/d5 and at least at one of
   the two published suspects for d1 (see EXPERIMENTS.md for the discussion).
"""

from __future__ import annotations

import pytest

from repro.core import DiagnosisEngine
from repro.core.paper_cases import (
    PAPER_DIAGNOSTIC_CASES,
    PAPER_EXPECTED_SUSPECTS,
    PAPER_INTERNAL_PROBABILITIES,
)


def paper_posteriors_for(engine, column):
    """Combine the paper's internal-variable posteriors with pinned evidence."""
    model = engine.model
    posteriors = {}
    for variable in model.variable_names:
        labels = model.state_table(variable).labels
        healthy = engine.healthy_states[variable]
        posteriors[variable] = {label: 1.0 if label == healthy else 0.0
                                for label in labels}
    posteriors.update(PAPER_INTERNAL_PROBABILITIES[column])
    return posteriors


class TestCaseDefinitions:
    def test_five_cases_defined(self):
        assert [case.name for case in PAPER_DIAGNOSTIC_CASES] == [
            "d1", "d2", "d3", "d4", "d5"]

    def test_case_evidence_covers_all_controllables_and_observables(
            self, regulator_circuit):
        for case in PAPER_DIAGNOSTIC_CASES:
            assert set(case.controllable_states) == set(
                regulator_circuit.model.controllable_variables)
            assert set(case.observable_states) == set(
                regulator_circuit.model.observable_variables)

    def test_case_states_are_valid(self, regulator_circuit):
        for case in PAPER_DIAGNOSTIC_CASES:
            regulator_circuit.model.validate_against(case.evidence())

    def test_published_probabilities_are_normalised(self):
        for column, variables in PAPER_INTERNAL_PROBABILITIES.items():
            for variable, distribution in variables.items():
                assert sum(distribution.values()) == pytest.approx(1.0, abs=0.06), \
                    (column, variable)


class TestDeductionOnPaperNumbers:
    """The paper's manual reasoning, automated, on the paper's own numbers."""

    @pytest.mark.parametrize("case_name", ["d1", "d2", "d3", "d4", "d5"])
    def test_suspects_match_paper(self, regulator_engine, case_name):
        posteriors = paper_posteriors_for(regulator_engine, case_name)
        suspects = regulator_engine.deduce_candidates(posteriors)
        assert set(suspects) == set(PAPER_EXPECTED_SUSPECTS[case_name])


class TestEndToEndReproduction:
    """Full pipeline on the synthetic substrate (designer prior, no silicon)."""

    @pytest.mark.parametrize("case_name,expected", [
        ("d2", ("enb13",)),
        ("d3", ("warnvpst",)),
        ("d4", ("lcbg",)),
        ("d5", ("enbsw",)),
    ])
    def test_exact_suspect_reproduction(self, regulator_engine, case_name, expected):
        case = next(c for c in PAPER_DIAGNOSTIC_CASES if c.name == case_name)
        diagnosis = regulator_engine.diagnose(case)
        assert set(diagnosis.suspects) == set(expected)

    def test_case_d1_points_at_a_published_suspect(self, regulator_engine):
        case = PAPER_DIAGNOSTIC_CASES[0]
        diagnosis = regulator_engine.diagnose(case)
        assert set(diagnosis.suspects) & set(PAPER_EXPECTED_SUSPECTS["d1"])

    def test_evidence_rows_pin_to_certainty(self, regulator_engine):
        # Table VII shows 100 % for every evidence (controllable/observable)
        # state in every case column; the reproduction must do the same.
        for case in PAPER_DIAGNOSTIC_CASES:
            diagnosis = regulator_engine.diagnose(case)
            for variable, state in case.evidence().items():
                assert diagnosis.posteriors[variable][state] == pytest.approx(1.0)

    def test_qualitative_ordering_matches_paper(self, regulator_engine):
        # In d1 lcbg is healthy and hcbg is the more suspicious bandgap; in
        # d4 lcbg is clearly suspicious.  The reproduction must preserve that
        # qualitative contrast even if the absolute numbers differ.
        d1 = regulator_engine.diagnose(PAPER_DIAGNOSTIC_CASES[0])
        d4 = regulator_engine.diagnose(PAPER_DIAGNOSTIC_CASES[3])
        assert d1.fail_probabilities["lcbg"] < 0.2
        assert d1.fail_probabilities["hcbg"] > d1.fail_probabilities["lcbg"]
        assert d4.fail_probabilities["lcbg"] > 0.5
