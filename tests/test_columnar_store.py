"""Columnar-vs-row equivalence suite for the array-native learning path.

The `DeviceResultStore` → `CaseMatrix` → `np.bincount` pipeline must be a
drop-in replacement for the row-based one: identical state counts (exact
integer equality), identical learned CPTs (1e-12), identical provenance, and
lossless round trips between the store, per-device result rows and the ASCII
datalog format — including populations that carry masked-fault and passing
devices whose case rows never observe a failure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ate import (
    DeviceResultStore,
    parse_datalog,
    read_columnar,
    store_from_datalogs,
    write_datalog,
)
from repro.bayesnet import BayesianEstimator, CaseMatrix, MaximumLikelihoodEstimator
from repro.core import CaseGenerator, Dlog2BBN
from repro.exceptions import DatalogError


@pytest.fixture(scope="module")
def builder(regulator_circuit):
    return Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)


@pytest.fixture(scope="module")
def structure(builder, regulator_circuit):
    """The regulator structure with a uniform schema for the estimators."""
    return builder.build_structure().with_uniform_cpds(
        regulator_circuit.model.cardinalities(),
        regulator_circuit.model.state_names())


@pytest.fixture(scope="module")
def row_cases(builder, regulator_population):
    return builder.case_generator().cases_from_results(
        regulator_population.results)


@pytest.fixture(scope="module")
def matrix(builder, regulator_population):
    return builder.case_generator().case_matrix(
        regulator_population.to_store())


class TestStateCountEquality:
    def test_counts_match_exactly_per_node(self, structure, row_cases, matrix):
        estimator = MaximumLikelihoodEstimator(structure)
        plain = CaseGenerator.as_learning_cases(row_cases)
        for node in structure.nodes:
            row_counts = estimator.state_counts(plain, node)
            matrix_counts = estimator.state_counts(matrix, node)
            assert np.array_equal(row_counts, matrix_counts), node

    def test_counts_are_integers_summing_to_observed_cases(self, structure,
                                                           matrix):
        estimator = MaximumLikelihoodEstimator(structure)
        for node in structure.nodes:
            counts = estimator.state_counts(matrix, node)
            assert np.array_equal(counts, np.round(counts))
            assert counts.sum() <= len(matrix)

    def test_missing_values_skip_rows_like_dict_path(self, sprinkler_network):
        cases = [
            {"cloudy": "0", "rain": "1", "sprinkler": None, "wet": "1"},
            {"cloudy": "1", "rain": None, "sprinkler": "0", "wet": "0"},
            {"cloudy": None, "rain": "0", "sprinkler": "0", "wet": "0"},
            {"cloudy": "0", "rain": "0", "sprinkler": "1", "wet": "1"},
        ]
        names = {node: sprinkler_network.get_cpd(node).state_names[node]
                 for node in sprinkler_network.nodes}
        encoded = CaseMatrix.from_cases(cases, names)
        estimator = MaximumLikelihoodEstimator(sprinkler_network)
        for node in sprinkler_network.nodes:
            assert np.array_equal(estimator.state_counts(cases, node),
                                  estimator.state_counts(encoded, node)), node


class TestFitEquality:
    def test_mle_cpts_match(self, structure, row_cases, matrix):
        estimator = MaximumLikelihoodEstimator(structure)
        from_rows = estimator.fit(CaseGenerator.as_learning_cases(row_cases))
        from_matrix = estimator.fit(matrix)
        for node in structure.nodes:
            difference = np.abs(from_rows.get_cpd(node).table
                                - from_matrix.get_cpd(node).table)
            assert difference.max() <= 1e-12, node

    def test_bayes_cpts_match(self, structure, regulator_prior, row_cases,
                              matrix):
        estimator = BayesianEstimator(structure,
                                      prior_network=regulator_prior,
                                      equivalent_sample_size=200)
        from_rows = estimator.fit(CaseGenerator.as_learning_cases(row_cases))
        from_matrix = estimator.fit(matrix)
        for node in structure.nodes:
            difference = np.abs(from_rows.get_cpd(node).table
                                - from_matrix.get_cpd(node).table)
            assert difference.max() <= 1e-12, node

    def test_built_models_match_through_dlog2bbn(self, builder,
                                                 regulator_prior, row_cases,
                                                 regulator_population):
        from_rows = builder.build(row_cases, method="bayes",
                                  prior_network=regulator_prior,
                                  equivalent_sample_size=200)
        from_matrix = builder.build(
            builder.case_generator().case_matrix(
                regulator_population.to_store()),
            method="bayes", prior_network=regulator_prior,
            equivalent_sample_size=200)
        for node in from_rows.network.nodes:
            difference = np.abs(from_rows.network.get_cpd(node).table
                                - from_matrix.network.get_cpd(node).table)
            assert difference.max() <= 1e-12, node


class TestCaseMatrixProvenance:
    def test_matrix_rows_match_labeled_cases(self, row_cases, matrix):
        assert len(matrix) == len(row_cases)
        assert list(matrix.device_ids) == [case.device_id
                                           for case in row_cases]
        assert list(matrix.condition_labels) == [case.condition_label
                                                 for case in row_cases]
        assert np.array_equal(matrix.failed,
                              np.array([case.failed for case in row_cases]))

    def test_matrix_decodes_to_identical_assignments(self, row_cases, matrix):
        for decoded, case in zip(matrix.to_labeled_cases(), row_cases):
            assert decoded.assignments == case.assignments

    def test_failing_devices_filter_matches_row_filter(self, builder,
                                                       regulator_population):
        generator = builder.case_generator()
        filtered_rows = generator.cases_from_results(
            regulator_population.results, only_failing_devices=True)
        filtered_matrix = generator.case_matrix(
            regulator_population.to_store(), only_failing_devices=True)
        assert len(filtered_matrix) == len(filtered_rows)
        assert list(filtered_matrix.device_ids) == [case.device_id
                                                    for case in filtered_rows]
        for decoded, case in zip(filtered_matrix.to_labeled_cases(),
                                 filtered_rows):
            assert decoded.assignments == case.assignments

    def test_masked_fault_devices_produce_unfailed_rows(self, matrix,
                                                        regulator_population):
        """Passing devices appear in the matrix with no failing case rows."""
        passing = {result.device_id
                   for result in regulator_population.passing_results}
        assert passing  # fixture generates 5 defect-free devices
        rows = np.array([device_id in passing
                         for device_id in matrix.device_ids])
        assert rows.any()
        assert not matrix.failed[rows].any()


class TestStoreRoundTrips:
    def test_store_to_rows_to_store(self, regulator_population):
        store = regulator_population.to_store()
        rebuilt = DeviceResultStore.from_results(store.to_results())
        assert np.array_equal(store.values, rebuilt.values)
        assert np.array_equal(store.passed, rebuilt.passed)
        assert [str(d) for d in store.device_ids] \
            == [str(d) for d in rebuilt.device_ids]
        assert list(store.test_numbers) == list(rebuilt.test_numbers)
        assert store.blocks == rebuilt.blocks
        assert np.array_equal(store.fault_index, rebuilt.fault_index)
        assert list(store.fault_blocks) == list(rebuilt.fault_blocks)
        assert list(store.fault_modes) == list(rebuilt.fault_modes)

    def test_store_to_datalog_to_store(self, regulator_population, tmp_path):
        store = regulator_population.to_store()
        path = write_datalog(regulator_population.to_datalogs(),
                             tmp_path / "population.dlog")
        rebuilt = store_from_datalogs(parse_datalog(path))
        # VALUE is serialised with 6 significant digits; verdicts, identity
        # and fault labels survive the text format exactly.
        assert store.values == pytest.approx(rebuilt.values, rel=1e-5)
        assert np.array_equal(store.passed, rebuilt.passed)
        assert [str(d) for d in store.device_ids] \
            == [str(d) for d in rebuilt.device_ids]
        # Severity is not serialised by the fault label format.
        assert np.array_equal(store.fault_index, rebuilt.fault_index)
        assert list(store.fault_blocks) == list(rebuilt.fault_blocks)
        assert list(store.fault_modes) == list(rebuilt.fault_modes)

    @pytest.mark.parametrize("chunk_devices", [3, 1024])
    def test_read_columnar_matches_row_parser(self, regulator_population,
                                              tmp_path, chunk_devices):
        path = write_datalog(regulator_population.to_datalogs(),
                             tmp_path / "population.dlog")
        rowwise = store_from_datalogs(parse_datalog(path))
        streamed = read_columnar(path, chunk_devices=chunk_devices)
        # Both parse the same text, so the planes must be bit-identical.
        assert np.array_equal(rowwise.values, streamed.values)
        assert np.array_equal(rowwise.passed, streamed.passed)
        assert [str(d) for d in rowwise.device_ids] \
            == [str(d) for d in streamed.device_ids]
        assert list(rowwise.test_numbers) == list(streamed.test_numbers)
        assert rowwise.test_names == streamed.test_names
        assert rowwise.blocks == streamed.blocks
        assert rowwise.conditions == streamed.conditions
        assert np.array_equal(rowwise.fault_index, streamed.fault_index)
        assert list(rowwise.fault_blocks) == list(streamed.fault_blocks)
        assert list(rowwise.fault_modes) == list(streamed.fault_modes)

    def test_fits_agree_across_every_ingestion_path(self, builder, structure,
                                                    regulator_population,
                                                    tmp_path):
        """Store, result rows and the two datalog readers learn alike."""
        generator = builder.case_generator()
        estimator = MaximumLikelihoodEstimator(structure)
        path = write_datalog(regulator_population.to_datalogs(),
                             tmp_path / "population.dlog")
        reference = estimator.fit(
            generator.case_matrix(regulator_population.to_store()))
        from_rows = estimator.fit(
            generator.case_matrix(regulator_population.results))
        from_streamed = estimator.fit(generator.case_matrix(
            read_columnar(path)))
        from_parsed = estimator.fit(generator.case_matrix(
            store_from_datalogs(parse_datalog(path))))
        for node in structure.nodes:
            # Store and result rows hold the same float planes: exact parity.
            assert np.abs(reference.get_cpd(node).table
                          - from_rows.get_cpd(node).table).max() <= 1e-12, node
            # The two datalog readers parse the same text: exact parity.
            assert np.abs(from_streamed.get_cpd(node).table
                          - from_parsed.get_cpd(node).table).max() <= 1e-12, node


class TestSaveLoad:
    def test_save_load_mmap_round_trip(self, regulator_population, tmp_path):
        store = regulator_population.to_store()
        saved = store.save(tmp_path / "store")
        loaded = DeviceResultStore.load(saved)
        # The store constructor wraps without copying: the value plane must
        # still be backed by the memory-mapped .npy file.
        assert isinstance(loaded.values, np.memmap) \
            or isinstance(loaded.values.base, np.memmap)
        assert np.array_equal(store.values, loaded.values)
        assert np.array_equal(store.passed, loaded.passed)
        assert [str(d) for d in store.device_ids] \
            == [str(d) for d in loaded.device_ids]
        assert store.conditions == loaded.conditions
        assert list(store.fault_blocks) == list(loaded.fault_blocks)

    def test_mmap_store_learns_identical_cpts(self, builder, structure,
                                              regulator_population, tmp_path):
        saved = regulator_population.to_store().save(tmp_path / "store")
        loaded = DeviceResultStore.load(saved)
        generator = builder.case_generator()
        estimator = MaximumLikelihoodEstimator(structure)
        reference = estimator.fit(
            generator.case_matrix(regulator_population.to_store()))
        learned = estimator.fit(generator.case_matrix(loaded))
        for node in structure.nodes:
            difference = np.abs(reference.get_cpd(node).table
                                - learned.get_cpd(node).table)
            assert difference.max() <= 1e-12, node


class TestDatalogErrors:
    def test_parse_datalog_reports_line_number(self, regulator_population,
                                               tmp_path):
        path = write_datalog(regulator_population.to_datalogs()[:2],
                             tmp_path / "broken.dlog")
        lines = path.read_text(encoding="ascii").splitlines()
        lines[4] = "DEVICE=DEV-00001 garbage record"
        path.write_text("\n".join(lines) + "\n", encoding="ascii")
        with pytest.raises(DatalogError) as excinfo:
            parse_datalog(path)
        assert excinfo.value.line_number == 5
        assert excinfo.value.path == str(path)
        assert ":5:" in str(excinfo.value)

    def test_read_columnar_reports_line_number(self, regulator_population,
                                               tmp_path):
        path = write_datalog(regulator_population.to_datalogs()[:2],
                             tmp_path / "broken.dlog")
        lines = path.read_text(encoding="ascii").splitlines()
        lines[4] = "DEVICE=DEV-00001 garbage record"
        path.write_text("\n".join(lines) + "\n", encoding="ascii")
        with pytest.raises(DatalogError) as excinfo:
            read_columnar(path)
        assert excinfo.value.line_number == 5
