"""Fault-injection suite: the serving layer under every injected failure class.

The acceptance bar: timeouts, engine exceptions, impossible evidence and
corrupted CPDs must each yield either a degraded-but-valid
:class:`Diagnosis` with provenance metadata or a structured
:class:`DiagnosisFailure` — never an unhandled traceback or NaN posterior
out of ``diagnose_batch``.
"""

from __future__ import annotations

import math

import pytest

from repro.core import (
    Diagnosis,
    DiagnosisFailure,
    Dlog2BBN,
    FallbackPolicy,
    RobustDiagnosisEngine,
)
from repro.core.robust import FallbackExhaustedError
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
from repro.exceptions import (
    DegradedResultWarning,
    ImpossibleEvidenceError,
    InferenceError,
)
from repro.testing import ChaosError, FaultInjector, truncated_evidence

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.DegradedResultWarning")

CASE = PAPER_DIAGNOSTIC_CASES[0]


@pytest.fixture(scope="module")
def built_model(regulator_circuit):
    """Prior-only build: strictly positive CPTs, so only *injected* faults
    can make an engine fail."""
    builder = Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)
    return builder.build()


@pytest.fixture
def engine(built_model):
    return RobustDiagnosisEngine(
        built_model,
        FallbackPolicy(chain=("ve", "lw"), num_samples=500, seed=3))


def assert_valid_degraded(diagnosis: Diagnosis) -> None:
    """A degraded result is still a complete, finite, normalised diagnosis."""
    assert isinstance(diagnosis, Diagnosis)
    assert diagnosis.provenance is not None and diagnosis.provenance.degraded
    for distribution in diagnosis.posteriors.values():
        total = 0.0
        for probability in distribution.values():
            assert math.isfinite(probability)
            total += probability
        assert total == pytest.approx(1.0, abs=1e-6)


class TestTransientEngineFault:
    def test_retry_recovers_on_same_engine(self, built_model):
        engine = RobustDiagnosisEngine(
            built_model, FallbackPolicy(chain=("ve", "lw"),
                                        attempts_per_engine=2,
                                        num_samples=500, seed=3))
        with FaultInjector() as chaos:
            chaos.raise_on_call(engine._engine, "posteriors",
                                nth=1, transient=True)
            with pytest.warns(DegradedResultWarning):
                diagnosis = engine.diagnose(CASE)
        assert_valid_degraded(diagnosis)
        provenance = diagnosis.provenance
        assert provenance.engine == "ve"
        assert [a.outcome for a in provenance.attempts] == ["error", "ok"]
        assert "ChaosError" in provenance.attempts[0].error

    def test_injection_restored_after_exit(self, engine):
        with FaultInjector() as chaos:
            chaos.raise_on_call(engine._engine, "posteriors",
                                error=ChaosError("primary down"))
            with pytest.warns(DegradedResultWarning):
                degraded = engine.diagnose(CASE)
            assert degraded.provenance.engine == "lw"
        # After restore, the same engine serves on the primary again.
        diagnosis = engine.diagnose(CASE)
        assert diagnosis.provenance.engine == "ve"
        assert not diagnosis.provenance.degraded


class TestHardEngineFault:
    def test_degrades_to_likelihood_weighting(self, engine):
        with FaultInjector() as chaos:
            chaos.raise_on_call(engine._engine, "posteriors")
            with pytest.warns(DegradedResultWarning):
                diagnosis = engine.diagnose(CASE)
        assert_valid_degraded(diagnosis)
        provenance = diagnosis.provenance
        assert provenance.engine == "lw"
        assert [a.outcome for a in provenance.attempts] == ["error", "ok"]
        assert provenance.effective_sample_size is not None
        assert provenance.effective_sample_size > 0
        assert any("degraded from 've' to 'lw'" in note
                   for note in provenance.notes)

    def test_whole_chain_down_is_structured(self, engine):
        with FaultInjector() as chaos:
            chaos.raise_on_call(engine._engine, "posteriors")
            chaos.raise_on_call(engine._engine_for("lw")._engine, "posteriors")
            with pytest.raises(FallbackExhaustedError) as info:
                engine.diagnose(CASE)
        error = info.value
        assert [a.engine for a in error.attempts] == ["ve", "lw"]
        assert all(a.outcome == "error" for a in error.attempts)
        assert error.wall_time > 0

    def test_gibbs_is_the_last_resort(self, built_model):
        engine = RobustDiagnosisEngine(
            built_model, FallbackPolicy(chain=("ve", "lw", "gibbs"),
                                        num_samples=100, seed=3))
        with FaultInjector() as chaos:
            chaos.raise_on_call(engine._engine, "posteriors")
            chaos.raise_on_call(engine._engine_for("lw")._engine, "posteriors")
            with pytest.warns(DegradedResultWarning):
                diagnosis = engine.diagnose(CASE)
        assert_valid_degraded(diagnosis)
        assert diagnosis.provenance.engine == "gibbs"


class TestDeadline:
    def test_latency_triggers_timeout_fallback(self, built_model):
        engine = RobustDiagnosisEngine(
            built_model, FallbackPolicy(chain=("ve", "lw"), deadline=0.15,
                                        num_samples=500, seed=3))
        with FaultInjector() as chaos:
            chaos.add_latency(engine._engine, "posteriors", seconds=1.0)
            with pytest.warns(DegradedResultWarning):
                diagnosis = engine.diagnose(CASE)
        assert_valid_degraded(diagnosis)
        provenance = diagnosis.provenance
        assert provenance.engine == "lw"
        assert provenance.attempts[0].outcome == "timeout"
        assert "InferenceTimeoutError" in provenance.attempts[0].error
        # The stalled attempt was abandoned at ~the deadline, not awaited.
        assert provenance.attempts[0].elapsed < 0.8

    def test_fast_engine_unaffected_by_deadline(self, built_model):
        engine = RobustDiagnosisEngine(
            built_model, FallbackPolicy(chain=("ve", "lw"), deadline=5.0))
        diagnosis = engine.diagnose(CASE)
        assert diagnosis.provenance.engine == "ve"
        assert not diagnosis.provenance.degraded


class TestImpossibleEvidence:
    def test_permanent_failure_skips_fallback(self, engine):
        with FaultInjector() as chaos:
            chaos.raise_on_call(
                engine._engine, "posteriors",
                error=ImpossibleEvidenceError("injected impossible evidence"))
            with pytest.raises(ImpossibleEvidenceError):
                engine.diagnose(CASE)
        # No sampler can fix zero-probability evidence: the fallback engine
        # must never have been constructed.
        assert "lw" not in engine._fallback_engines

    def test_zero_row_cpd_is_impossible_evidence(self, engine, built_model):
        with FaultInjector() as chaos:
            chaos.corrupt_cpd(built_model.network, "vp1", mode="zero-row")
            with pytest.raises(ImpossibleEvidenceError):
                engine.diagnose(CASE)
        # Restoration brings the clean tables (and posteriors) back.
        diagnosis = engine.diagnose(CASE)
        assert not diagnosis.provenance.degraded


class TestCorruptedCPD:
    def test_nan_fails_both_exact_engines(self, built_model):
        engine = RobustDiagnosisEngine(
            built_model, FallbackPolicy(chain=("ve", "jt")))
        with FaultInjector() as chaos:
            chaos.corrupt_cpd(built_model.network, "reg1", mode="nan")
            # Both exact engines see the same poisoned network: the chain
            # exhausts with structured errors, never NaN posteriors.
            with pytest.raises(FallbackExhaustedError) as info:
                engine.diagnose(CASE)
        assert [a.engine for a in info.value.attempts] == ["ve", "jt"]
        assert all("InferenceError" in (a.error or "")
                   for a in info.value.attempts)

    def test_nan_never_leaks_from_sampler(self, built_model):
        from repro.bayesnet.inference import LikelihoodWeighting
        with FaultInjector() as chaos:
            chaos.corrupt_cpd(built_model.network, "reg1", mode="nan")
            lw = LikelihoodWeighting(built_model.network,
                                     num_samples=500, seed=7)
            try:
                posteriors = lw.posteriors(["hcbg"], CASE.evidence())
            except InferenceError:
                pass  # structured refusal is the other acceptable outcome
            else:
                assert all(math.isfinite(p)
                           for p in posteriors["hcbg"].values())

    def test_unnormalized_table_renormalises(self, engine, built_model):
        with FaultInjector() as chaos:
            chaos.corrupt_cpd(built_model.network, "reg1",
                              mode="unnormalized")
            result = engine.diagnose(CASE)
        for distribution in result.posteriors.values():
            total = sum(distribution.values())
            assert math.isfinite(total)
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_nan_detected_by_exact_engine(self, built_model):
        from repro.bayesnet.inference import VariableElimination
        with FaultInjector() as chaos:
            chaos.corrupt_cpd(built_model.network, "reg1", mode="nan")
            ve = VariableElimination(built_model.network)
            with pytest.raises(InferenceError, match="corrupted"):
                ve.posteriors(["hcbg"], CASE.evidence())


class TestTruncatedEvidence:
    def test_partial_datalog_still_diagnoses(self, engine):
        partial = truncated_evidence(CASE.evidence(), keep=4)
        assert len(partial) == 4
        diagnosis = engine.diagnose_evidence(partial, name="truncated")
        assert isinstance(diagnosis, Diagnosis)
        assert not diagnosis.provenance.degraded
        for distribution in diagnosis.posteriors.values():
            assert sum(distribution.values()) == pytest.approx(1.0, abs=1e-6)

    def test_empty_truncation_uses_priors(self, engine):
        diagnosis = engine.diagnose_evidence(
            truncated_evidence(CASE.evidence(), keep=0), name="empty")
        assert diagnosis.evidence == {}
        assert diagnosis.posteriors


class TestBatchUnderChaos:
    def test_one_poisoned_case_cannot_kill_the_sweep(self, engine):
        poisoned = {"vp1": "99"}
        batch = [PAPER_DIAGNOSTIC_CASES[0].evidence(), poisoned,
                 PAPER_DIAGNOSTIC_CASES[1].evidence()]
        with FaultInjector() as chaos:
            # Primary engine hard-down on top of the poisoned case: good
            # cases degrade, the bad case fails structurally.
            chaos.raise_on_call(engine._engine, "posteriors")
            results = engine.diagnose_batch(
                batch, names=["d1", "poisoned", "d2"], on_error="collect")
        assert len(results) == 3
        assert isinstance(results[0], Diagnosis)
        assert results[0].provenance.engine == "lw"
        assert isinstance(results[1], DiagnosisFailure)
        assert results[1].error_type == "EvidenceError"
        assert isinstance(results[2], Diagnosis)
        for result in results:
            if isinstance(result, Diagnosis):
                for distribution in result.posteriors.values():
                    assert all(math.isfinite(p)
                               for p in distribution.values())

    def test_whole_chain_down_collects_attempt_trails(self, engine):
        with FaultInjector() as chaos:
            chaos.raise_on_call(engine._engine, "posteriors")
            chaos.raise_on_call(engine._engine_for("lw")._engine, "posteriors")
            results = engine.diagnose_batch(
                [PAPER_DIAGNOSTIC_CASES[0], PAPER_DIAGNOSTIC_CASES[1]],
                on_error="collect")
        assert all(isinstance(r, DiagnosisFailure) for r in results)
        for failure in results:
            assert failure.error_type == "FallbackExhaustedError"
            assert [a.engine for a in failure.attempts] == ["ve", "lw"]
            assert failure.wall_time > 0


class TestInjectorMechanics:
    def test_call_counts_recorded(self, engine):
        with FaultInjector() as chaos:
            chaos.raise_on_call(engine._engine, "posteriors", nth=3)
            engine.diagnose(CASE)
            assert chaos.call_counts["VariableElimination.posteriors"] == 1

    def test_cpd_restored_bit_for_bit(self, built_model):
        import numpy as np
        before = built_model.network.get_cpd("reg1").table.copy()
        with FaultInjector() as chaos:
            chaos.corrupt_cpd(built_model.network, "reg1", mode="nan")
            assert np.isnan(built_model.network.get_cpd("reg1").table).any()
        after = built_model.network.get_cpd("reg1").table
        assert np.array_equal(before, after)

    def test_bad_arguments_rejected(self, engine):
        chaos = FaultInjector()
        with pytest.raises(ValueError):
            chaos.raise_on_call(engine._engine, "posteriors", nth=0)
        with pytest.raises(ValueError):
            chaos.add_latency(engine._engine, "posteriors", seconds=-1)
        with pytest.raises(ValueError):
            from repro.testing import corrupt_cpd_table
            corrupt_cpd_table(engine.network, "reg1", mode="weird")
