"""The evidence-cache capacity knob: constructor, environment, policy.

Serving fleets host one engine per worker process, so cache capacity is a
per-worker memory budget.  It must be settable per engine
(``cache_size=``), per process (``REPRO_EVIDENCE_CACHE_SIZE``), and per
policy (``FallbackPolicy.evidence_cache_size``), with constructor beating
environment beating the library default of 128 — and bad values must be
rejected loudly, not clamped silently.
"""

from __future__ import annotations

import pytest

from repro.bayesnet.inference import JunctionTree, VariableElimination
from repro.bayesnet.inference._evidence_cache import (
    CACHE_SIZE_ENV_VAR,
    DEFAULT_CACHE_SIZE,
    EvidenceCache,
    resolve_cache_size,
)
from repro.core import Dlog2BBN, FallbackPolicy, RobustDiagnosisEngine
from repro.exceptions import DiagnosisError, InferenceError


class TestResolveCacheSize:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_SIZE_ENV_VAR, raising=False)
        assert resolve_cache_size() == DEFAULT_CACHE_SIZE

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(CACHE_SIZE_ENV_VAR, "999")
        assert resolve_cache_size(4) == 4

    def test_environment_overrides_default(self, monkeypatch):
        monkeypatch.setenv(CACHE_SIZE_ENV_VAR, "17")
        assert resolve_cache_size() == 17

    def test_non_integer_environment_is_loud(self, monkeypatch):
        monkeypatch.setenv(CACHE_SIZE_ENV_VAR, "lots")
        with pytest.raises(InferenceError):
            resolve_cache_size()

    @pytest.mark.parametrize("value", [0, -1])
    def test_nonpositive_rejected(self, value):
        with pytest.raises(InferenceError):
            resolve_cache_size(value)

    def test_nonpositive_environment_rejected(self, monkeypatch):
        monkeypatch.setenv(CACHE_SIZE_ENV_VAR, "0")
        with pytest.raises(InferenceError):
            resolve_cache_size()


class TestEngineCapacity:
    def test_ve_capacity_bounds_the_lru(self, sprinkler_network):
        engine = VariableElimination(sprinkler_network, cache_size=2)
        for state in ("0", "1"):
            engine.posteriors(["wet"], {"cloudy": state})
            engine.posteriors(["wet"], {"rain": state})
        assert len(engine._marginal_cache._entries) == 2

    def test_ve_default_capacity(self, sprinkler_network, monkeypatch):
        monkeypatch.delenv(CACHE_SIZE_ENV_VAR, raising=False)
        engine = VariableElimination(sprinkler_network)
        assert engine._marginal_cache._max_entries == DEFAULT_CACHE_SIZE

    def test_ve_reads_the_environment(self, sprinkler_network, monkeypatch):
        monkeypatch.setenv(CACHE_SIZE_ENV_VAR, "3")
        engine = VariableElimination(sprinkler_network)
        assert engine._marginal_cache._max_entries == 3
        assert engine._probability_cache._max_entries == 3

    def test_jt_capacity_bounds_the_lru(self, sprinkler_network):
        engine = JunctionTree(sprinkler_network, cache_size=1)
        engine.posteriors(["wet"], {"cloudy": "0"})
        engine.posteriors(["wet"], {"cloudy": "1"})
        assert len(engine._calibrations._entries) == 1

    def test_jt_reads_the_environment(self, sprinkler_network, monkeypatch):
        monkeypatch.setenv(CACHE_SIZE_ENV_VAR, "5")
        engine = JunctionTree(sprinkler_network)
        assert engine._calibrations._max_entries == 5

    def test_cached_answers_match_uncached(self, sprinkler_network):
        tiny = VariableElimination(sprinkler_network, cache_size=1)
        roomy = VariableElimination(sprinkler_network, cache_size=64)
        for evidence in ({"cloudy": "0"}, {"rain": "1"}, {"cloudy": "0"}):
            lhs = tiny.posteriors(["wet"], evidence)["wet"]
            rhs = roomy.posteriors(["wet"], evidence)["wet"]
            assert lhs == pytest.approx(rhs)


class TestPolicyKnob:
    def test_policy_validates_capacity(self):
        with pytest.raises(DiagnosisError):
            FallbackPolicy(evidence_cache_size=0)

    def test_policy_capacity_reaches_the_engines(self, regulator_circuit):
        builder = Dlog2BBN(regulator_circuit.model,
                           regulator_circuit.healthy_states)
        built = builder.build()
        engine = RobustDiagnosisEngine(
            built, FallbackPolicy(evidence_cache_size=7))
        inner = engine._engine
        caches = [getattr(inner, "_marginal_cache", None),
                  getattr(inner, "_calibrations", None)]
        sizes = {cache._max_entries for cache in caches if cache is not None}
        assert sizes == {7}


class TestEvidenceCachePrimitive:
    def test_lru_eviction_order(self, sprinkler_network):
        cache = EvidenceCache(sprinkler_network, max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1     # touch "a": "b" is now oldest
        cache.put(("c",), 3)
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3
