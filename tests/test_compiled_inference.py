"""Compiled inference programs vs the interpreted exact engines.

The compiled path (repro.bayesnet.inference.compiled) traces the VE bucket
sweep / JT calibration once into a static op-list and replays it per query.
These tests pin the contract that makes that safe to serve from:

* 1e-12 posterior parity with the interpreted engines — over the sprinkler
  network, the regulator model, and randomised networks × evidence sets;
* ``run_batch`` parity with ``run`` over batch shapes, duplicates and raw
  code matrices;
* identical error behaviour (``ImpossibleEvidenceError`` on
  zero-probability evidence, structured ``InferenceError`` on signature
  mismatches);
* compile-on-first-use caching in ``DiagnosisEngine`` and invalidation on
  CPD replacement, mirroring the interpreted evidence caches.
"""

from __future__ import annotations

import itertools
import threading

import numpy as np
import pytest

from repro.bayesnet import BayesianNetwork, TabularCPD
from repro.bayesnet.factor import cached_einsum_path
from repro.bayesnet.inference import (
    CompiledProgram,
    JunctionTree,
    VariableElimination,
    compile_posteriors,
)
from repro.core import DiagnosisEngine
from repro.core.robust import FallbackPolicy, RobustDiagnosisEngine
from repro.exceptions import ImpossibleEvidenceError, InferenceError

TOL = 1e-12


def interpreted_engine(network, schedule):
    return VariableElimination(network) if schedule == "ve" \
        else JunctionTree(network)


def assert_parity(program, engine, evidence):
    """Compiled and interpreted answers must agree to 1e-12 (errors too)."""
    free = [node for node in engine.network.nodes if node not in evidence]
    try:
        expected = engine.posteriors(free, evidence)
    except ImpossibleEvidenceError:
        with pytest.raises(ImpossibleEvidenceError):
            program.run(evidence)
        return
    actual = program.posteriors(evidence)
    assert set(actual) == set(expected)
    for variable, distribution in expected.items():
        for state, probability in distribution.items():
            assert actual[variable][state] == pytest.approx(
                probability, abs=TOL)


def random_network(rng, node_count=8, max_parents=3, max_card=3):
    """A random DAG with random (occasionally deterministic) CPTs."""
    names = [f"n{i}" for i in range(node_count)]
    edges = []
    for i in range(1, node_count):
        count = int(rng.integers(0, min(i, max_parents) + 1))
        for parent in rng.choice(i, size=count, replace=False):
            edges.append((names[int(parent)], names[i]))
    network = BayesianNetwork(edges, nodes=names)
    for i, name in enumerate(names):
        parents = network.parents(name)
        parent_cards = [network.cardinality(p) for p in parents] \
            if parents else []
        card = int(rng.integers(2, max_card + 1))
        columns = int(np.prod(parent_cards)) if parents else 1
        table = rng.random((card, columns)) + 0.05
        # Sprinkle hard zeros so some evidence configurations become
        # impossible and both paths must agree on raising.
        if rng.random() < 0.5:
            table[rng.integers(0, card), rng.integers(0, columns)] = 0.0
        table /= table.sum(axis=0, keepdims=True)
        network.add_cpd(TabularCPD(name, card, table, parents, parent_cards))
    return network


# ------------------------------------------------------------------ parity
@pytest.mark.parametrize("schedule", ["ve", "jt"])
def test_sprinkler_parity_over_every_evidence_subset(sprinkler_network,
                                                     schedule):
    engine = interpreted_engine(sprinkler_network, schedule)
    nodes = sprinkler_network.nodes
    for size in range(len(nodes) + 1):
        for subset in itertools.combinations(nodes, size):
            program = compile_posteriors(sprinkler_network, subset,
                                         schedule=schedule)
            states = [sprinkler_network.state_names(v)
                      for v in program.evidence_vars]
            for combo in itertools.product(*states) if subset else [()]:
                assert_parity(program, engine,
                              dict(zip(program.evidence_vars, combo)))


@pytest.mark.parametrize("schedule", ["ve", "jt"])
def test_randomised_network_parity(schedule):
    rng = np.random.default_rng(1234)
    for trial in range(6):
        network = random_network(rng, node_count=int(rng.integers(5, 10)))
        nodes = network.nodes
        for _ in range(3):
            count = int(rng.integers(0, len(nodes)))
            subset = [nodes[int(i)] for i in
                      rng.choice(len(nodes), size=count, replace=False)]
            program = compile_posteriors(network, subset, schedule=schedule)
            engine = interpreted_engine(network, schedule)
            for _ in range(4):
                evidence = {
                    variable: network.state_names(variable)[
                        int(rng.integers(0, network.cardinality(variable)))]
                    for variable in program.evidence_vars}
                assert_parity(program, engine, evidence)


@pytest.mark.parametrize("schedule", ["ve", "jt"])
def test_empty_evidence_gives_prior_marginals(sprinkler_network, schedule):
    program = compile_posteriors(sprinkler_network, (), schedule=schedule)
    engine = interpreted_engine(sprinkler_network, schedule)
    expected = engine.posteriors(sprinkler_network.nodes, {})
    actual = program.posteriors({})
    for variable, distribution in expected.items():
        for state, probability in distribution.items():
            assert actual[variable][state] == pytest.approx(
                probability, abs=TOL)


def test_regulator_model_parity(regulator_engine):
    """Both schedules agree with the interpreted JT on the real model."""
    network = regulator_engine.network
    model = regulator_engine.model
    internal = set(model.internal_variables)
    signature = tuple(sorted(v for v in model.variable_names
                             if v not in internal))
    engine = JunctionTree(network)
    rng = np.random.default_rng(7)
    evidences = []
    for _ in range(5):
        evidences.append({
            variable: network.state_names(variable)[
                int(rng.integers(0, network.cardinality(variable)))]
            for variable in signature})
    for schedule in ("ve", "jt"):
        program = compile_posteriors(network, signature, schedule=schedule)
        for evidence in evidences:
            assert_parity(program, engine, evidence)


# ------------------------------------------------------------------- batch
@pytest.mark.parametrize("schedule", ["ve", "jt"])
@pytest.mark.parametrize("batch_size", [1, 2, 7])
def test_run_batch_matches_run(sprinkler_network, schedule, batch_size):
    program = compile_posteriors(sprinkler_network, ("cloudy", "wet"),
                                 schedule=schedule)
    combos = list(itertools.product(
        sprinkler_network.state_names("cloudy"),
        sprinkler_network.state_names("wet")))
    evidences = [dict(zip(("cloudy", "wet"), combos[i % len(combos)]))
                 for i in range(batch_size)]
    batch = program.run_batch(evidences, on_impossible="mask")
    assert batch.planes.shape[0] == batch_size
    assert len(batch) == batch_size
    for row, evidence in enumerate(evidences):
        try:
            single = program.run(evidence)
        except ImpossibleEvidenceError:
            assert not batch.evidence_probability[row] > 0
            assert batch.distributions(row) is None
            assert not batch.planes[row].any()
            continue
        marginals = batch.distributions(row)
        for variable, values in single.items():
            names = program.state_names[variable]
            for state, probability in zip(names, values):
                assert marginals[variable][state] == pytest.approx(
                    float(probability), abs=TOL)


def test_run_batch_accepts_raw_code_matrix(sprinkler_network):
    program = compile_posteriors(sprinkler_network, ("cloudy", "wet"))
    evidences = [
        dict(zip(program.evidence_vars,
                 (program.state_names[variable][(position + offset) % 2]
                  for position, variable
                  in enumerate(program.evidence_vars))))
        for offset in range(2)]
    codes = program.encode(evidences)
    from_codes = program.run_batch(codes, on_impossible="mask")
    from_dicts = program.run_batch(evidences, on_impossible="mask")
    assert np.allclose(from_codes.planes, from_dicts.planes, atol=TOL)
    assert np.allclose(from_codes.evidence_probability,
                       from_dicts.evidence_probability, atol=TOL)


def test_run_batch_empty(sprinkler_network):
    program = compile_posteriors(sprinkler_network, ("wet",))
    batch = program.run_batch([])
    assert len(batch) == 0
    assert batch.planes.shape == (0, len(program.variables),
                                  program.max_states)


def test_evidence_probability_matches_engine(sprinkler_network):
    program = compile_posteriors(sprinkler_network, ("cloudy", "wet"))
    engine = VariableElimination(sprinkler_network)
    evidences = [dict(zip(("cloudy", "wet"), combo)) for combo in
                 itertools.product(sprinkler_network.state_names("cloudy"),
                                   sprinkler_network.state_names("wet"))]
    batch = program.run_batch(evidences, on_impossible="mask")
    for row, evidence in enumerate(evidences):
        assert batch.evidence_probability[row] == pytest.approx(
            engine.probability_of_evidence(evidence), abs=TOL)


# ------------------------------------------------------------------ errors
def impossible_network():
    """wet is deterministically s0, so evidence wet=s1 is impossible."""
    network = BayesianNetwork([("rain", "wet")])
    network.add_cpds(
        TabularCPD("rain", 2, [[0.6], [0.4]]),
        TabularCPD("wet", 2, [[1.0, 1.0], [0.0, 0.0]], ["rain"], [2]),
    )
    return network


@pytest.mark.parametrize("schedule", ["ve", "jt"])
def test_impossible_evidence_raises_on_run(schedule):
    network = impossible_network()
    program = compile_posteriors(network, ("wet",), schedule=schedule)
    impossible = {"wet": network.state_names("wet")[1]}
    with pytest.raises(ImpossibleEvidenceError):
        program.run(impossible)
    with pytest.raises(ImpossibleEvidenceError):
        program.run_batch([impossible])


def test_run_batch_mask_isolates_impossible_rows():
    network = impossible_network()
    program = compile_posteriors(network, ("wet",))
    states = network.state_names("wet")
    batch = program.run_batch([{"wet": states[0]}, {"wet": states[1]},
                               {"wet": states[0]}], on_impossible="mask")
    assert batch.evidence_probability[0] > 0
    assert not batch.evidence_probability[1] > 0
    assert batch.distributions(1) is None
    good = batch.distributions(0)
    again = batch.distributions(2)
    assert good == again
    with pytest.raises(InferenceError):
        program.run_batch([{"wet": states[0]}], on_impossible="typo")


def test_signature_mismatch_raises(sprinkler_network):
    program = compile_posteriors(sprinkler_network, ("cloudy", "wet"))
    with pytest.raises(InferenceError, match="missing"):
        program.run({"cloudy": "s0"})
    extra = {"cloudy": sprinkler_network.state_names("cloudy")[0],
             "wet": sprinkler_network.state_names("wet")[0],
             "rain": sprinkler_network.state_names("rain")[0]}
    with pytest.raises(InferenceError, match="unexpected"):
        program.run(extra)
    bad_state = {"cloudy": "no-such-state",
                 "wet": sprinkler_network.state_names("wet")[0]}
    with pytest.raises(InferenceError, match="unknown state"):
        program.run(bad_state)
    with pytest.raises(InferenceError, match="out of range"):
        program.run_batch(np.array([[0, 99]]))
    with pytest.raises(InferenceError, match="shape"):
        program.run_batch(np.zeros((2, 5), dtype=int))
    with pytest.raises(InferenceError, match="unknown evidence variable"):
        compile_posteriors(sprinkler_network, ("no-such-node",))
    with pytest.raises(InferenceError, match="schedule"):
        compile_posteriors(sprinkler_network, (), schedule="typo")
    with pytest.raises(InferenceError, match="not a free variable"):
        batch = program.run_batch(
            [{"cloudy": sprinkler_network.state_names("cloudy")[0],
              "wet": sprinkler_network.state_names("wet")[0]}],
            on_impossible="mask")
        batch.distribution(0, "wet")


# ------------------------------------------------------- engine integration
@pytest.mark.parametrize("inference", ["ve", "jt"])
def test_diagnosis_engine_compiled_parity(regulator_engine, inference):
    model = regulator_engine.built_model
    plain = DiagnosisEngine(model, inference=inference)
    compiled = DiagnosisEngine(model, inference=inference, compiled=True)
    assert compiled.compiled
    network = model.network
    internal = set(compiled.model.internal_variables)
    signature = sorted(v for v in compiled.model.variable_names
                       if v not in internal)
    rng = np.random.default_rng(21)
    evidences = []
    for _ in range(4):
        evidences.append({
            variable: network.state_names(variable)[
                int(rng.integers(0, network.cardinality(variable)))]
            for variable in signature})
    for evidence in evidences:
        try:
            expected = plain.diagnose_evidence(evidence)
        except ImpossibleEvidenceError:
            with pytest.raises(ImpossibleEvidenceError):
                compiled.diagnose_evidence(evidence)
            continue
        actual = compiled.diagnose_evidence(evidence)
        assert actual.suspects == expected.suspects
        for variable, distribution in expected.posteriors.items():
            for state, probability in distribution.items():
                assert actual.posteriors[variable][state] == pytest.approx(
                    probability, abs=TOL)
    # One signature -> one compile, every query served from the program.
    assert compiled.compile_count >= 1
    assert compiled.compiled_query_count >= 1
    # Prior marginals also go through the compiled path.
    expected = plain.initial_probabilities()
    actual = compiled.initial_probabilities()
    assert list(actual) == list(expected)
    for variable, distribution in expected.items():
        for state, probability in distribution.items():
            assert actual[variable][state] == pytest.approx(
                probability, abs=TOL)


@pytest.mark.parametrize("inference", ["ve", "jt"])
def test_diagnose_batch_compiled_parity(regulator_engine, inference,
                                        regulator_circuit,
                                        regulator_population):
    from repro.core import CaseGenerator
    model = regulator_engine.built_model
    generator = CaseGenerator(regulator_circuit.model)
    labeled = generator.cases_from_results(
        regulator_population.failing_results)
    cases = [case.observed() for case in labeled]
    plain = DiagnosisEngine(model, inference="jt")
    compiled = DiagnosisEngine(model, inference=inference, compiled=True)
    expected = plain.diagnose_batch(cases, on_error="collect")
    actual = compiled.diagnose_batch(cases, on_error="collect")
    assert compiled.compiled_query_count == len(cases)
    assert len(actual) == len(expected)
    for ours, theirs in zip(actual, expected):
        assert ours.ok == theirs.ok
        if not theirs.ok:
            assert ours.error_type == theirs.error_type
            continue
        assert ours.suspects == theirs.suspects
        for variable, distribution in theirs.posteriors.items():
            for state, probability in distribution.items():
                assert ours.posteriors[variable][state] == pytest.approx(
                    probability, abs=TOL)


def test_compile_on_first_use_and_cpd_invalidation(regulator_engine):
    model = regulator_engine.built_model
    engine = DiagnosisEngine(model, inference="jt", compiled=True)
    first = engine.warm_compile()
    assert first >= 0.0
    count = engine.compile_count
    assert count == 1
    assert engine.warm_compile() == 0.0  # cached: no recompile
    assert engine.compile_count == count
    network = model.network
    network.add_cpd(network.get_cpd(network.nodes[0]))  # bump cpd_version
    assert engine.warm_compile() > 0.0
    assert engine.compile_count == count + 1


def test_warm_compile_noop_on_uncompiled_and_sampler_engines(
        regulator_engine):
    model = regulator_engine.built_model
    assert DiagnosisEngine(model, inference="jt").warm_compile() == 0.0
    sampler = DiagnosisEngine(model, inference="lw", compiled=True)
    assert not sampler.compiled  # samplers have no sweep to trace
    assert sampler.warm_compile() == 0.0


def test_robust_policy_compiled_passthrough(regulator_engine):
    model = regulator_engine.built_model
    policy = FallbackPolicy(chain=("jt", "lw"), compiled=True)
    robust = RobustDiagnosisEngine(model, policy)
    assert robust.compiled
    diagnosis = robust.initial_probabilities()
    assert robust.compiled_query_count == 1
    plain = DiagnosisEngine(model, inference="jt")
    expected = plain.initial_probabilities()
    for variable, distribution in expected.items():
        for state, probability in distribution.items():
            assert diagnosis[variable][state] == pytest.approx(
                probability, abs=TOL)
    # Lazily built fallback engines inherit the flag.
    fallback = robust._engine_for("lw")
    assert not fallback.compiled  # lw has no compiled path


def test_compiled_run_is_thread_safe(sprinkler_network):
    """Concurrent run() calls may not corrupt the preallocated buffers."""
    program = compile_posteriors(sprinkler_network, ("wet",))
    states = sprinkler_network.state_names("wet")
    expected = {state: program.posteriors({"wet": state})
                for state in states}
    failures = []

    def worker(state):
        for _ in range(200):
            actual = program.posteriors({"wet": state})
            for variable, distribution in expected[state].items():
                for name, probability in distribution.items():
                    if abs(actual[variable][name] - probability) > 1e-9:
                        failures.append((state, variable, name))
                        return

    threads = [threading.Thread(target=worker, args=(states[i % 2],))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures


# --------------------------------------------------------------- path cache
def test_cached_einsum_path_memoises():
    key = ("test-compiled-inference", ((0, 1), (2, 2)), (0,))
    operands = [np.ones((2, 2)), [0, 1], np.ones((2, 2)), [1, 2], [0, 2]]
    first = cached_einsum_path(key, operands)
    second = cached_einsum_path(key, operands)
    assert first is second  # cache hit returns the memoised path object
    assert first[0] == "einsum_path"


def test_engine_compile_posteriors_entry_points(sprinkler_network):
    ve_program = VariableElimination(sprinkler_network).compile_posteriors(
        ["wet"])
    jt_program = JunctionTree(sprinkler_network).compile_posteriors(["wet"])
    assert isinstance(ve_program, CompiledProgram)
    assert ve_program.schedule == "ve"
    assert jt_program.schedule == "jt"
    assert ve_program.evidence_vars == jt_program.evidence_vars == ("wet",)
    assert ve_program.op_count > 0 and jt_program.op_count > 0
    assert ve_program.compile_ms >= 0.0
