"""Tests for parameter learning: MLE, Bayesian estimation and EM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesnet import (
    BayesianEstimator,
    BayesianNetwork,
    ExpectationMaximization,
    MaximumLikelihoodEstimator,
    TabularCPD,
)
from repro.bayesnet.learning.structure_scores import (
    HillClimbSearch,
    bdeu_score,
    bic_score,
    network_score,
)
from repro.bayesnet.sampling import sample_dataset
from repro.exceptions import LearningError


class TestMaximumLikelihood:
    def test_recovers_parameters_from_samples(self, sprinkler_network):
        cases = sample_dataset(sprinkler_network, 4000, seed=10)
        learned = MaximumLikelihoodEstimator(sprinkler_network).fit(cases)
        original = sprinkler_network.get_cpd("rain").table
        estimate = learned.get_cpd("rain").table
        assert np.allclose(original, estimate, atol=0.05)

    def test_unseen_configuration_is_uniform(self, sprinkler_network):
        cases = [{"cloudy": "0", "sprinkler": "0", "rain": "0", "wet": "0"}]
        learned = MaximumLikelihoodEstimator(sprinkler_network).fit(cases)
        # Parent configuration (sprinkler=1, rain=1) never observed.
        column = learned.get_cpd("wet").table[:, 3]
        assert np.allclose(column, 0.5)

    def test_missing_values_are_skipped(self, sprinkler_network):
        cases = [{"cloudy": "0", "sprinkler": None, "rain": "0", "wet": "0"},
                 {"cloudy": "1", "sprinkler": "1", "rain": "1", "wet": "1"}]
        learned = MaximumLikelihoodEstimator(sprinkler_network).fit(cases)
        learned.check_model()

    def test_empty_cases_raise(self, sprinkler_network):
        with pytest.raises(LearningError):
            MaximumLikelihoodEstimator(sprinkler_network).fit([])

    def test_unknown_state_raises(self, sprinkler_network):
        with pytest.raises(LearningError):
            MaximumLikelihoodEstimator(sprinkler_network).fit(
                [{"cloudy": "maybe", "sprinkler": "0", "rain": "0", "wet": "0"}])


class TestBayesianEstimator:
    def test_prior_pulls_towards_prior_network(self, sprinkler_network):
        # A single observed case with a huge prior weight stays near the prior.
        cases = [{"cloudy": "0", "sprinkler": "1", "rain": "1", "wet": "0"}]
        estimator = BayesianEstimator(sprinkler_network,
                                      prior_network=sprinkler_network,
                                      equivalent_sample_size=1000)
        learned = estimator.fit(cases)
        assert np.allclose(learned.get_cpd("rain").table,
                           sprinkler_network.get_cpd("rain").table, atol=0.02)

    def test_uniform_prior_smooths(self, sprinkler_network):
        cases = sample_dataset(sprinkler_network, 50, seed=11)
        learned = BayesianEstimator(sprinkler_network,
                                    equivalent_sample_size=5).fit(cases)
        assert np.all(learned.get_cpd("wet").table > 0)

    def test_invalid_equivalent_sample_size(self, sprinkler_network):
        with pytest.raises(LearningError):
            BayesianEstimator(sprinkler_network, equivalent_sample_size=0)


class TestExpectationMaximization:
    def test_improves_likelihood_with_missing_data(self, sprinkler_network):
        cases = sample_dataset(sprinkler_network, 300, seed=12,
                               missing_fraction=0.25)
        structure = BayesianNetwork(nodes=sprinkler_network.nodes)
        for parent, child in sprinkler_network.edges:
            structure.add_edge(parent, child)
        learner = ExpectationMaximization(
            structure,
            cardinalities={n: 2 for n in structure.nodes},
            max_iterations=8)
        learner.fit(cases)
        trace = learner.log_likelihood_trace
        assert len(trace) >= 2
        assert trace[-1] >= trace[0] - 1e-6

    def test_fully_observed_em_matches_mle(self, sprinkler_network):
        cases = sample_dataset(sprinkler_network, 500, seed=13)
        mle = MaximumLikelihoodEstimator(sprinkler_network).fit(cases)
        em = ExpectationMaximization(sprinkler_network, max_iterations=2).fit(cases)
        assert np.allclose(mle.get_cpd("rain").table,
                           em.get_cpd("rain").table, atol=1e-6)

    def test_hidden_variable_recovery_shape(self, sprinkler_network):
        # Hide "rain" completely; EM must still return a valid model.
        cases = sample_dataset(sprinkler_network, 200, seed=14)
        for case in cases:
            case["rain"] = None
        learned = ExpectationMaximization(sprinkler_network,
                                          max_iterations=3).fit(cases)
        learned.check_model()

    def test_empty_cases_raise(self, sprinkler_network):
        with pytest.raises(LearningError):
            ExpectationMaximization(sprinkler_network).fit([])


class TestStructureScores:
    def test_true_parent_scores_higher_than_none(self, sprinkler_network):
        cases = sample_dataset(sprinkler_network, 1500, seed=15)
        cards = {n: 2 for n in sprinkler_network.nodes}
        names = {n: ["0", "1"] for n in sprinkler_network.nodes}
        with_parent = bic_score(cases, "rain", ["cloudy"], cards, names)
        without_parent = bic_score(cases, "rain", [], cards, names)
        assert with_parent > without_parent

    def test_bdeu_finite(self, sprinkler_network):
        cases = sample_dataset(sprinkler_network, 200, seed=16)
        cards = {n: 2 for n in sprinkler_network.nodes}
        names = {n: ["0", "1"] for n in sprinkler_network.nodes}
        score = bdeu_score(cases, "wet", ["sprinkler", "rain"], cards, names)
        assert np.isfinite(score)

    def test_network_score_decomposes(self, sprinkler_network):
        cases = sample_dataset(sprinkler_network, 300, seed=17)
        cards = {n: 2 for n in sprinkler_network.nodes}
        names = {n: ["0", "1"] for n in sprinkler_network.nodes}
        total = network_score(sprinkler_network, cases, cards, names, score="bic")
        parts = sum(bic_score(cases, node, sprinkler_network.parents(node),
                              cards, names)
                    for node in sprinkler_network.nodes)
        assert np.isclose(total, parts)

    def test_hill_climb_finds_edges(self, sprinkler_network):
        cases = sample_dataset(sprinkler_network, 1500, seed=18)
        cards = {n: 2 for n in sprinkler_network.nodes}
        search = HillClimbSearch(cards, max_parents=2, max_iterations=50)
        found = search.fit(cases)
        # The wet node strongly depends on sprinkler and rain; hill climbing
        # must connect it to at least one of them (direction may flip).
        connected = {frozenset(edge) for edge in found.edges}
        assert (frozenset(("sprinkler", "wet")) in connected
                or frozenset(("rain", "wet")) in connected)
