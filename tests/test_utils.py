"""Tests for the shared utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability_vector,
    check_unique,
    ensure_rng,
    format_probability_table,
    format_table,
)
from repro.utils.rng import spawn_rng


class TestRng:
    def test_ensure_rng_from_seed_is_reproducible(self):
        assert ensure_rng(5).integers(1000) == ensure_rng(5).integers(1000)

    def test_ensure_rng_passthrough(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator

    def test_spawn_rng_is_independent(self):
        parent = ensure_rng(2)
        child = spawn_rng(parent)
        assert child is not parent


class TestValidation:
    def test_probability_vector_accepts_valid(self):
        check_probability_vector([0.2, 0.3, 0.5])

    def test_probability_vector_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.2, 0.2])

    def test_probability_vector_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector([-0.1, 1.1])

    def test_check_positive_and_non_negative(self):
        assert check_positive(1.0) == 1.0
        assert check_non_negative(0.0) == 0.0
        with pytest.raises(ValueError):
            check_positive(0.0)
        with pytest.raises(ValueError):
            check_non_negative(-1.0)

    def test_check_in_range(self):
        assert check_in_range(0.5, 0.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            check_in_range(2.0, 0.0, 1.0)

    def test_check_unique(self):
        assert check_unique(["a", "b"]) == ["a", "b"]
        with pytest.raises(ValueError):
            check_unique(["a", "a"])


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["Name", "Value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_format_probability_table(self):
        text = format_probability_table({"reg1": {"0": 0.25, "1": 0.75}})
        assert "75.00" in text
        assert "reg1" in text
