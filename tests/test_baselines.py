"""Tests for the baseline diagnosers."""

from __future__ import annotations

import pytest

from repro.baselines import (
    FaultDictionaryDiagnoser,
    NaiveBayesDiagnoser,
    NearestNeighborDiagnoser,
)
from repro.core import CaseGenerator
from repro.exceptions import DiagnosisError


@pytest.fixture(scope="module")
def training_data(regulator_circuit, regulator_population):
    generator = CaseGenerator(regulator_circuit.model)
    cases = generator.cases_from_results(regulator_population.failing_results)
    true_blocks = {device: fault.block
                   for device, fault in regulator_population.ground_truth.items()}
    return cases, true_blocks


class TestFaultDictionary:
    def test_fit_and_diagnose_training_device(self, regulator_population):
        true_blocks = {device: fault.block
                       for device, fault in regulator_population.ground_truth.items()}
        diagnoser = FaultDictionaryDiagnoser().fit(
            regulator_population.failing_results, true_blocks)
        result = regulator_population.failing_results[0]
        ranking = diagnoser.rank(result)
        assert ranking[0][1] <= ranking[-1][1]
        assert diagnoser.rank_of(result, true_blocks[result.device_id]) <= len(ranking)

    def test_unfitted_raises(self, regulator_population):
        with pytest.raises(DiagnosisError):
            FaultDictionaryDiagnoser().rank(regulator_population.results[0])

    def test_missing_ground_truth_rejected(self, regulator_population):
        with pytest.raises(DiagnosisError):
            FaultDictionaryDiagnoser().fit(regulator_population.failing_results, {})


class TestNearestNeighbor:
    def test_fit_and_diagnose(self, training_data):
        cases, true_blocks = training_data
        diagnoser = NearestNeighborDiagnoser(k=3).fit(cases, true_blocks)
        evidence = cases[0].observed()
        ranking = diagnoser.rank(evidence)
        assert ranking[0][1] >= ranking[-1][1]
        assert diagnoser.diagnose(evidence) == ranking[0][0]

    def test_invalid_k(self):
        with pytest.raises(DiagnosisError):
            NearestNeighborDiagnoser(k=0)

    def test_fit_without_ground_truth_raises(self, training_data):
        cases, _ = training_data
        with pytest.raises(DiagnosisError):
            NearestNeighborDiagnoser().fit(cases, {})


class TestNaiveBayes:
    def test_fit_and_rank_is_distribution(self, training_data):
        cases, true_blocks = training_data
        diagnoser = NaiveBayesDiagnoser().fit(cases, true_blocks)
        ranking = diagnoser.rank(cases[0].observed())
        assert sum(p for _, p in ranking) == pytest.approx(1.0)
        assert diagnoser.rank_of(cases[0].observed(),
                                 next(iter(true_blocks.values()))) >= 1

    def test_unknown_block_posterior_raises(self, training_data):
        cases, true_blocks = training_data
        diagnoser = NaiveBayesDiagnoser().fit(cases, true_blocks)
        with pytest.raises(DiagnosisError):
            diagnoser.log_posterior("not_a_block", {})

    def test_invalid_alpha(self):
        with pytest.raises(DiagnosisError):
            NaiveBayesDiagnoser(alpha=0.0)
