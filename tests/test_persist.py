"""Durable cross-process state: cache, registry, fingerprints, sharing.

Covers the crash-safe :class:`~repro.persist.PosteriorCache` (round trips,
torn-tail recovery, bit-flip quarantine, LRU compaction, cross-instance
visibility), content fingerprinting, compiled-program serialization and
sharing, the validation-gated :class:`~repro.persist.ModelRegistry`, and the
robust engine's durable-cache fast path.  Everything here runs in-process;
the ``kill -9`` crash-recovery scenarios live in ``test_persist_chaos.py``.
"""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro.core import FallbackPolicy, RobustDiagnosisEngine
from repro.core.diagnosis import DiagnosisEngine
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
from repro.exceptions import (
    ModelPublishError,
    ModelRegistryError,
    PersistError,
)
from repro.persist import (
    FingerprintTracker,
    ModelRegistry,
    PosteriorCache,
    model_fingerprint,
)
from repro.testing import cache_segments, flip_byte, truncate_tail


@pytest.fixture
def cache(tmp_path):
    with PosteriorCache(tmp_path / "cache") as cache:
        yield cache


def fill(cache: PosteriorCache, count: int, *, size: int = 64,
         prefix: str = "k") -> list[tuple]:
    """Write ``count`` distinct entries and return their keys."""
    keys = []
    for i in range(count):
        key = ("test", prefix, i)
        cache.put(key, {"payload": "x" * size, "i": i})
        keys.append(key)
    return keys


# ---------------------------------------------------------------------------
# PosteriorCache: round trips
# ---------------------------------------------------------------------------

class TestCacheRoundTrip:
    def test_put_get_and_miss(self, cache):
        cache.put(("a", 1), {"p": 0.25})
        assert cache.get(("a", 1)) == {"p": 0.25}
        assert cache.get(("absent",)) is None
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1

    def test_last_writer_wins(self, cache):
        cache.put(("k",), "first")
        cache.put(("k",), "second")
        assert cache.get(("k",)) == "second"
        assert len(cache) == 1

    def test_posteriors_round_trip_bit_exact(self, cache):
        posteriors = {"amp1": {"ok": 1.0 - 2**-37, "fail": 2**-37},
                      "out": {"low": 1 / 3, "high": 2 / 3}}
        cache.put_posteriors("fp", {"t_out": "fail", "t_in": "pass"},
                             posteriors)
        loaded = cache.get_posteriors("fp", {"t_in": "pass", "t_out": "fail"})
        # Key order in the evidence mapping must not matter, values must.
        assert loaded == posteriors

    def test_wrong_model_version_misses(self, cache):
        cache.put_posteriors("fp-a", {"t": "fail"}, {"x": {"ok": 1.0}})
        assert cache.get_posteriors("fp-b", {"t": "fail"}) is None

    def test_survives_reopen(self, tmp_path):
        with PosteriorCache(tmp_path / "c") as first:
            fill(first, 5)
        with PosteriorCache(tmp_path / "c") as second:
            assert len(second) == 5
            assert second.get(("test", "k", 3)) == {"payload": "x" * 64,
                                                    "i": 3}

    def test_cross_instance_visibility(self, tmp_path):
        with PosteriorCache(tmp_path / "c") as writer, \
                PosteriorCache(tmp_path / "c") as reader:
            assert reader.get(("shared",)) is None
            writer.put(("shared",), 42)
            # A miss triggers a refresh, so the reader sees the append.
            assert reader.get(("shared",)) == 42

    def test_stats_snapshot_is_json_safe(self, cache):
        fill(cache, 3)
        cache.get(("test", "k", 0))
        cache.get(("nope",))
        snapshot = json.loads(json.dumps(cache.stats()))
        assert snapshot["entries"] == 3
        assert snapshot["quarantined"] == 0


# ---------------------------------------------------------------------------
# PosteriorCache: corruption containment
# ---------------------------------------------------------------------------

class TestCacheCorruption:
    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        with PosteriorCache(tmp_path / "c") as cache:
            keys = fill(cache, 3)
        segment = cache_segments(tmp_path / "c")[-1]
        truncate_tail(segment, 7)  # rip the last record's tail off
        with PosteriorCache(tmp_path / "c") as cache:
            assert len(cache) == 2
            assert cache.torn_tail_bytes > 0
            assert cache.get(keys[0]) is not None
            assert cache.get(keys[1]) is not None
            assert cache.get(keys[2]) is None  # lost, not garbled

    def test_flipped_payload_bit_is_quarantined(self, tmp_path):
        with PosteriorCache(tmp_path / "c") as cache:
            keys = fill(cache, 3)
        segment = cache_segments(tmp_path / "c")[-1]
        flip_byte(segment, 16)  # inside the first record's payload
        with PosteriorCache(tmp_path / "c") as cache:
            assert cache.quarantined >= 1
            assert any(record.kind == "bad-crc"
                       for record in cache.corruption_records)
            assert cache.get(keys[0]) is None  # a miss, never garbage
            # Records beyond the quarantined frame still load.
            assert cache.get(keys[2]) is not None

    def test_bad_magic_quarantines_the_remainder(self, tmp_path):
        with PosteriorCache(tmp_path / "c") as cache:
            fill(cache, 3)
        flip_byte(cache_segments(tmp_path / "c")[-1], 0)
        with PosteriorCache(tmp_path / "c") as cache:
            assert len(cache) == 0
            assert cache.quarantined >= 1
            assert any(record.kind == "bad-magic"
                       for record in cache.corruption_records)

    def test_rot_under_a_live_instance_is_caught_at_read(self, tmp_path):
        with PosteriorCache(tmp_path / "c") as cache:
            [key] = fill(cache, 1)
            flip_byte(cache_segments(tmp_path / "c")[-1], 16)
            # The index still points at the record; the per-read CRC check
            # must catch the rot and quarantine instead of serving it.
            assert cache.get(key) is None
            assert cache.quarantined >= 1

    def test_corruption_records_carry_location(self, tmp_path):
        with PosteriorCache(tmp_path / "c") as cache:
            fill(cache, 1)
        segment = cache_segments(tmp_path / "c")[-1]
        flip_byte(segment, 16)
        with PosteriorCache(tmp_path / "c") as cache:
            [record] = cache.corruption_records
            assert record.path == str(segment)
            assert record.offset == 0


# ---------------------------------------------------------------------------
# PosteriorCache: LRU compaction
# ---------------------------------------------------------------------------

class TestCacheCompaction:
    def test_lru_compaction_keeps_the_hot_key(self, tmp_path):
        with PosteriorCache(tmp_path / "c", max_bytes=16_384,
                            segment_bytes=4_096) as cache:
            hot = ("test", "hot", 0)
            cache.put(hot, "keep me")
            for i in range(200):
                cache.put(("test", "cold", i), "x" * 128)
                cache.get(hot)  # touch: most recently used every round
            assert cache.compactions >= 1
            assert cache.evicted > 0
            assert cache.get(hot) == "keep me"
            assert len(cache) < 201
            # Compaction rewrote the survivors; disk usage is bounded.
            assert cache.total_bytes <= 16_384

    def test_reader_survives_a_sibling_compaction(self, tmp_path):
        with PosteriorCache(tmp_path / "c", max_bytes=16_384,
                            segment_bytes=4_096) as writer, \
                PosteriorCache(tmp_path / "c") as reader:
            writer.put(("early",), "value")
            assert reader.get(("early",)) == "value"  # index the old segment
            for i in range(200):
                writer.put(("test", "cold", i), "x" * 128)
            assert writer.compactions >= 1
            # The reader's offsets are stale; the generation stamp forces a
            # rescan instead of a misread. Whatever survived must read clean.
            for key in list(reader.keys()):
                assert reader.get(key) in (None, "value", "x" * 128)
            writer.put(("fresh",), "post-compaction")
            assert reader.get(("fresh",)) == "post-compaction"


# ---------------------------------------------------------------------------
# Content fingerprints
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_deterministic_and_content_addressed(self, sprinkler_network):
        first = model_fingerprint(sprinkler_network)
        assert first == model_fingerprint(sprinkler_network)
        assert first == model_fingerprint(copy.deepcopy(sprinkler_network))
        assert len(first) == 64  # hex SHA-256

    def test_parameter_change_changes_the_fingerprint(self, sprinkler_network):
        perturbed = copy.deepcopy(sprinkler_network)
        cpd = perturbed.get_cpd("rain")
        cpd.table[...] = [[0.7, 0.1], [0.3, 0.9]]
        assert model_fingerprint(perturbed) \
            != model_fingerprint(sprinkler_network)

    def test_tracker_matches_the_pure_function(self, sprinkler_network):
        tracker = FingerprintTracker(sprinkler_network)
        assert tracker.current() == model_fingerprint(sprinkler_network)
        assert tracker.current() == tracker.current()


# ---------------------------------------------------------------------------
# Compiled-program serialization and cross-engine sharing
# ---------------------------------------------------------------------------

class TestProgramSharing:
    def test_from_bytes_rejects_garbage(self):
        from repro.bayesnet.inference.compiled import CompiledProgram
        with pytest.raises(PersistError):
            CompiledProgram.from_bytes(b"not a program")
        with pytest.raises(PersistError):
            CompiledProgram.from_bytes(
                __import__("pickle").dumps({"wrong": "type"}))

    def test_shared_program_skips_the_second_trace(self, regulator_built_model,
                                                   tmp_path):
        case = PAPER_DIAGNOSTIC_CASES[1]
        with PosteriorCache(tmp_path / "c") as cache:
            tracer = DiagnosisEngine(regulator_built_model, compiled=True,
                                     program_cache=cache)
            reference = tracer.diagnose(case)
            assert tracer.compile_count >= 1

            sharer = DiagnosisEngine(regulator_built_model, compiled=True,
                                     program_cache=cache)
            shared = sharer.diagnose(case)
            assert sharer.program_cache_hits >= 1
            assert sharer.compile_count == 0  # the trace came off disk
            assert shared.posteriors == reference.posteriors  # bit-identical


# ---------------------------------------------------------------------------
# ModelRegistry
# ---------------------------------------------------------------------------

class TestModelRegistry:
    def test_empty_registry_reads_as_version_zero(self, tmp_path):
        with ModelRegistry(tmp_path / "models") as registry:
            assert registry.current_version() == 0
            assert registry.current_fingerprint() is None
            assert registry.load() == (0, None)
            assert registry.versions() == []

    def test_publish_load_round_trip(self, regulator_built_model, tmp_path):
        with ModelRegistry(tmp_path / "models") as registry:
            version = registry.publish(regulator_built_model)
            assert version == 1
            assert registry.current_version() == 1
            assert registry.current_fingerprint() \
                == model_fingerprint(regulator_built_model.network)
            loaded_version, loaded = registry.load()
            assert loaded_version == 1
            assert model_fingerprint(loaded.network) \
                == model_fingerprint(regulator_built_model.network)

    def test_republish_bumps_and_prunes(self, regulator_built_model,
                                        tmp_path):
        with ModelRegistry(tmp_path / "models", keep=2) as registry:
            for expected in (1, 2, 3, 4):
                assert registry.publish(regulator_built_model,
                                        validate=False) == expected
            assert registry.current_version() == 4
            # `keep` counts superseded artifacts besides the current one.
            assert registry.versions() == [2, 3, 4]

    def test_validation_gate_rejects_a_poisoned_model(
            self, regulator_built_model, tmp_path):
        candidate = copy.deepcopy(regulator_built_model)
        node = candidate.network.nodes[0]
        candidate.network.get_cpd(node).table[...] = np.nan
        with ModelRegistry(tmp_path / "models") as registry:
            registry.publish(regulator_built_model)
            with pytest.raises(ModelPublishError):
                registry.publish(candidate)
            # Rollback is structural: the swap never happened.
            assert registry.current_version() == 1
            assert registry.current_fingerprint() \
                == model_fingerprint(regulator_built_model.network)

    def test_corrupt_artifact_refuses_to_load(self, regulator_built_model,
                                              tmp_path):
        with ModelRegistry(tmp_path / "models") as registry:
            version = registry.publish(regulator_built_model)
            artifact = tmp_path / "models" / f"model-{version:06d}.pkl"
            flip_byte(artifact, artifact.stat().st_size // 2)
            with pytest.raises(ModelRegistryError):
                registry.load_version(version)

    def test_garbage_stamp_is_a_structured_error(self, tmp_path):
        with ModelRegistry(tmp_path / "models") as registry:
            (tmp_path / "models" / "CURRENT").write_text("{not json")
            with pytest.raises(ModelRegistryError):
                registry.current_version()


# ---------------------------------------------------------------------------
# RobustDiagnosisEngine + durable cache
# ---------------------------------------------------------------------------

class TestRobustEngineCaching:
    def test_hit_serves_bit_identical_posteriors(self, regulator_built_model,
                                                 tmp_path):
        case = PAPER_DIAGNOSTIC_CASES[1]
        with PosteriorCache(tmp_path / "c") as cache:
            engine = RobustDiagnosisEngine(regulator_built_model,
                                           FallbackPolicy(),
                                           posterior_cache=cache)
            cold = engine.diagnose(case)
            assert cold.provenance.engine == "ve"
            assert engine.cache_misses == 1

            warm = engine.diagnose(case)
            assert warm.provenance.engine == "cache"
            assert engine.cache_hits == 1
            assert warm.posteriors == cold.posteriors  # bit-identical
            assert warm.suspects == cold.suspects
            assert warm.fail_probabilities == cold.fail_probabilities

    def test_cache_survives_an_engine_restart(self, regulator_built_model,
                                              tmp_path):
        case = PAPER_DIAGNOSTIC_CASES[1]
        with PosteriorCache(tmp_path / "c") as cache:
            cold = RobustDiagnosisEngine(regulator_built_model,
                                         FallbackPolicy(),
                                         posterior_cache=cache).diagnose(case)
        with PosteriorCache(tmp_path / "c") as cache:
            restarted = RobustDiagnosisEngine(regulator_built_model,
                                              FallbackPolicy(),
                                              posterior_cache=cache)
            warm = restarted.diagnose(case)
            assert warm.provenance.engine == "cache"
            assert warm.posteriors == cold.posteriors

    @pytest.mark.filterwarnings("ignore::repro.exceptions.DegradedResultWarning")
    def test_sampled_posteriors_are_never_cached(self, regulator_built_model,
                                                 tmp_path):
        case = PAPER_DIAGNOSTIC_CASES[1]
        policy = FallbackPolicy(chain=("lw",), seed=11, num_samples=500)
        with PosteriorCache(tmp_path / "c") as cache:
            engine = RobustDiagnosisEngine(regulator_built_model, policy,
                                           posterior_cache=cache)
            result = engine.diagnose(case)
            assert result.provenance.engine == "lw"
            assert not any(key[0] == "posterior" for key in cache.keys())
            # And the next call re-samples instead of hitting the cache.
            again = engine.diagnose(case)
            assert again.provenance.engine == "lw"

    def test_without_a_cache_nothing_changes(self, regulator_built_model):
        case = PAPER_DIAGNOSTIC_CASES[1]
        engine = RobustDiagnosisEngine(regulator_built_model, FallbackPolicy())
        result = engine.diagnose(case)
        assert result.provenance.engine == "ve"
        assert engine.cache_hits == engine.cache_misses == 0
