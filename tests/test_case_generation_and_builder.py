"""Tests for case generation (Dlog2BBN input) and the model builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ate import parse_datalog, write_datalog
from repro.core import CaseGenerator, Dlog2BBN
from repro.core.behavioral_prior import BehavioralPriorBuilder, SimulationPriorBuilder
from repro.exceptions import ModelBuildError


class TestCaseGeneration:
    def test_one_case_per_condition_set(self, regulator_circuit,
                                         regulator_population):
        generator = CaseGenerator(regulator_circuit.model)
        result = regulator_population.results[0]
        cases = generator.cases_from_device_result(result)
        assert len(cases) == 5  # five condition sets in the program
        for case in cases:
            assert set(case.assignments) == set(regulator_circuit.model.variable_names)

    def test_internal_variables_are_unknown(self, regulator_circuit,
                                            regulator_population):
        generator = CaseGenerator(regulator_circuit.model)
        cases = generator.cases_from_results(regulator_population.results)
        for case in cases:
            for variable in regulator_circuit.model.internal_variables:
                assert case.assignments[variable] is None

    def test_controllable_and_observable_states_filled(self, regulator_circuit,
                                                       regulator_population):
        generator = CaseGenerator(regulator_circuit.model)
        case = generator.cases_from_results(regulator_population.results)[0]
        for variable in regulator_circuit.model.controllable_variables:
            assert case.assignments[variable] is not None
        for variable in regulator_circuit.model.observable_variables:
            assert case.assignments[variable] is not None

    def test_only_failing_devices_filter(self, regulator_circuit,
                                         regulator_population):
        generator = CaseGenerator(regulator_circuit.model)
        all_cases = generator.cases_from_results(regulator_population.results)
        failing_only = generator.cases_from_results(regulator_population.results,
                                                    only_failing_devices=True)
        assert len(failing_only) < len(all_cases)

    def test_datalog_path_matches_result_path(self, tmp_path, regulator_circuit,
                                              regulator_population):
        generator = CaseGenerator(regulator_circuit.model)
        result = regulator_population.failing_results[0]
        from_results = generator.cases_from_device_result(result)
        path = write_datalog([result.to_datalog()], tmp_path / "log.txt")
        from_datalogs = generator.cases_from_datalog(parse_datalog(path)[0])
        lookup = {case.condition_label: case.assignments for case in from_results}
        for case in from_datalogs:
            assert case.assignments == lookup[case.condition_label]

    def test_as_learning_cases_strips_provenance(self, regulator_circuit,
                                                 regulator_population):
        generator = CaseGenerator(regulator_circuit.model)
        cases = generator.cases_from_results(regulator_population.results[:2])
        plain = CaseGenerator.as_learning_cases(cases)
        assert isinstance(plain[0], dict)
        assert len(plain) == len(cases)


class TestDlog2BBN:
    def test_structure_matches_description(self, regulator_circuit):
        builder = Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)
        structure = builder.build_structure()
        assert set(structure.edges) == set(regulator_circuit.model.dependencies)

    def test_missing_healthy_state_rejected(self, regulator_circuit):
        with pytest.raises(ModelBuildError):
            Dlog2BBN(regulator_circuit.model, {"reg1": "1"})

    def test_invalid_healthy_state_rejected(self, regulator_circuit):
        bad = dict(regulator_circuit.healthy_states)
        bad["reg1"] = "9"
        with pytest.raises(ModelBuildError):
            Dlog2BBN(regulator_circuit.model, bad)

    def test_designer_prior_network_is_valid(self, regulator_circuit):
        builder = Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)
        prior = builder.designer_prior_network()
        assert prior.check_model()
        # A child with all-healthy parents is most likely healthy.
        cpd = prior.get_cpd("reg1")
        healthy_parents = {p: regulator_circuit.healthy_states[p]
                           for p in cpd.parents}
        assert cpd.probability("1", healthy_parents) > 0.5

    def test_build_without_cases_returns_prior(self, regulator_circuit,
                                               regulator_prior):
        builder = Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)
        built = builder.build(prior_network=regulator_prior)
        assert built.training_case_count == 0
        assert built.network.check_model()

    def test_build_with_bayes_updates_cpds(self, regulator_circuit,
                                           regulator_prior,
                                           regulator_population):
        builder = Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)
        cases = builder.case_generator().cases_from_results(
            regulator_population.results)
        built = builder.build(cases, method="bayes", prior_network=regulator_prior,
                              equivalent_sample_size=10)
        assert built.training_case_count == len(cases)
        assert built.network.check_model()

    def test_unknown_method_rejected(self, regulator_circuit, regulator_prior):
        builder = Dlog2BBN(regulator_circuit.model, regulator_circuit.healthy_states)
        with pytest.raises(ModelBuildError):
            builder.build([], method="magic", prior_network=regulator_prior)


class TestPriorBuilders:
    def test_behavioral_prior_is_valid_model(self, hypothetical_circuit):
        prior = BehavioralPriorBuilder(hypothetical_circuit.netlist,
                                       hypothetical_circuit.model,
                                       fault_probability=0.1).build()
        assert prior.check_model()
        # Block-2 driven by an operational Block-1 is most likely operational.
        cpd = prior.get_cpd("block2")
        assert cpd.probability("1", {"block1": "2"}) > 0.6

    def test_behavioral_prior_rejects_bad_probability(self, hypothetical_circuit):
        with pytest.raises(ModelBuildError):
            BehavioralPriorBuilder(hypothetical_circuit.netlist,
                                   hypothetical_circuit.model,
                                   fault_probability=1.5)

    def test_simulation_prior_is_valid_model(self, regulator_prior,
                                             regulator_circuit):
        assert regulator_prior.check_model()
        assert set(regulator_prior.nodes) == set(regulator_circuit.model.variable_names)

    def test_simulation_prior_learns_health_propagation(self, regulator_prior,
                                                        regulator_circuit):
        # Under nominal supply and an active enable, reg1 is most likely in
        # regulation; with the enable inferred inactive it is most likely off.
        cpd = regulator_prior.get_cpd("reg1")
        active = {"vp1": "2", "hcbg": "1", "enb13": "1"}
        inactive = {"vp1": "2", "hcbg": "1", "enb13": "0"}
        assert cpd.probability("1", active) > 0.6
        assert cpd.probability("0", inactive) > 0.6

    def test_simulation_prior_requires_conditions(self, regulator_circuit):
        with pytest.raises(ModelBuildError):
            SimulationPriorBuilder(regulator_circuit.netlist,
                                   regulator_circuit.model, condition_sets=[])


class TestBuildTimeValidation:
    """`Dlog2BBN.build` refuses corrupt parameters instead of shipping them."""

    def test_clean_builds_pass(self, regulator_circuit, regulator_prior):
        from repro.core import validate_built_network
        builder = Dlog2BBN(regulator_circuit.model,
                           regulator_circuit.healthy_states)
        built = builder.build([], prior_network=regulator_prior)
        validate_built_network(regulator_circuit.model, built.network)

    def test_nan_prior_rejected(self, regulator_circuit, regulator_prior):
        poisoned = regulator_prior.copy()
        cpd = poisoned.get_cpd("reg1").copy()
        cpd.table[0, 0] = np.nan
        poisoned.add_cpd(cpd)
        builder = Dlog2BBN(regulator_circuit.model,
                           regulator_circuit.healthy_states)
        with pytest.raises(ModelBuildError, match="NaN/inf"):
            builder.build([], prior_network=poisoned)

    def test_unnormalised_prior_rejected(self, regulator_circuit,
                                         regulator_prior):
        poisoned = regulator_prior.copy()
        cpd = poisoned.get_cpd("reg2").copy()
        cpd.table *= 1.7
        poisoned.add_cpd(cpd)
        builder = Dlog2BBN(regulator_circuit.model,
                           regulator_circuit.healthy_states)
        with pytest.raises(ModelBuildError, match="not normalised"):
            builder.build([], prior_network=poisoned)

    def test_negative_prior_rejected(self, regulator_circuit, regulator_prior):
        poisoned = regulator_prior.copy()
        cpd = poisoned.get_cpd("reg3").copy()
        # Negative mass in one state, compensated to keep the column sum at
        # 1.0 — only the sign check can catch this.
        removed = cpd.table[0, 0] + 0.1
        cpd.table[0, 0] = -0.1
        cpd.table[1, 0] += removed
        poisoned.add_cpd(cpd)
        builder = Dlog2BBN(regulator_circuit.model,
                           regulator_circuit.healthy_states)
        with pytest.raises(ModelBuildError, match="negative"):
            builder.build([], prior_network=poisoned)

    def test_wrong_state_labels_rejected(self, regulator_circuit):
        from repro.core import validate_built_network
        builder = Dlog2BBN(regulator_circuit.model,
                           regulator_circuit.healthy_states)
        network = builder.designer_prior_network()
        cpd = network.get_cpd("hcbg").copy()
        cpd.state_names = {**cpd.state_names, "hcbg": ["lo", "hi"]}
        network.add_cpd(cpd)
        with pytest.raises(ModelBuildError, match="state labels"):
            validate_built_network(regulator_circuit.model, network)

    def test_all_defects_collected(self, regulator_circuit, regulator_prior):
        from repro.core import validate_built_network
        poisoned = regulator_prior.copy()
        for variable, factor in (("reg1", np.nan), ("reg2", 1.7)):
            cpd = poisoned.get_cpd(variable).copy()
            if variable == "reg1":
                cpd.table[0, 0] = np.nan
            else:
                cpd.table *= factor
            poisoned.add_cpd(cpd)
        with pytest.raises(ModelBuildError, match="2 issue") as info:
            validate_built_network(regulator_circuit.model, poisoned)
        message = str(info.value)
        assert "reg1" in message and "reg2" in message
