"""Tests for the diagnosis engine, candidate deduction, reports and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DiagnosisEngine, DiagnosisMetrics, DiagnosticCase, DiagnosticReport
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
from repro.core.report import case_summary_table
from repro.exceptions import DiagnosisError


class TestPosteriorUpdate:
    def test_evidence_variables_pinned(self, regulator_engine):
        case = PAPER_DIAGNOSTIC_CASES[1]
        diagnosis = regulator_engine.diagnose(case)
        for variable, state in case.evidence().items():
            assert diagnosis.posteriors[variable][state] == pytest.approx(1.0)

    def test_posteriors_are_distributions(self, regulator_engine):
        diagnosis = regulator_engine.diagnose(PAPER_DIAGNOSTIC_CASES[0])
        for distribution in diagnosis.posteriors.values():
            assert np.isclose(sum(distribution.values()), 1.0, atol=1e-6)

    def test_initial_probabilities_cover_all_variables(self, regulator_engine,
                                                       regulator_circuit):
        initial = regulator_engine.initial_probabilities()
        assert set(initial) == set(regulator_circuit.model.variable_names)

    def test_invalid_evidence_state_rejected(self, regulator_engine):
        with pytest.raises(Exception):
            regulator_engine.update({"reg1": "99"})

    def test_ve_and_jt_engines_agree(self, regulator_built_model):
        ve = DiagnosisEngine(regulator_built_model, inference="ve")
        jt = DiagnosisEngine(regulator_built_model, inference="jt")
        case = PAPER_DIAGNOSTIC_CASES[4]
        left = ve.diagnose(case)
        right = jt.diagnose(case)
        for variable in left.fail_probabilities:
            assert np.isclose(left.fail_probabilities[variable],
                              right.fail_probabilities[variable], atol=1e-6)
        assert left.suspects == right.suspects

    def test_unknown_inference_engine_rejected(self, regulator_built_model):
        with pytest.raises(DiagnosisError):
            DiagnosisEngine(regulator_built_model, inference="oracle")

    def test_bad_thresholds_rejected(self, regulator_built_model):
        with pytest.raises(DiagnosisError):
            DiagnosisEngine(regulator_built_model, abnormal_threshold=0.2,
                            ambiguous_threshold=0.4)


class TestDiagnosisInterfaces:
    def test_diagnose_evidence_splits_roles(self, regulator_engine):
        evidence = {"vp1": "2", "vp1x": "4", "vp2": "2", "enb13_pin": "1",
                    "enb4_pin": "1", "enbsw_pin": "1", "reg1": "1", "reg2": "1",
                    "reg3": "1", "reg4": "1", "sw": "0"}
        diagnosis = regulator_engine.diagnose_evidence(evidence, name="adhoc")
        assert diagnosis.case_name == "adhoc"
        assert diagnosis.suspects == ["enbsw"]

    def test_diagnose_measurements_discretises(self, regulator_engine):
        conditions = {"vp1": 13.5, "vp1x": 13.5, "vp2": 8.0,
                      "enb13_pin": 2.2, "enb4_pin": 2.2, "enbsw_pin": 2.2}
        measurements = {"reg1": 8.5, "reg2": 5.0, "reg3": 5.0, "reg4": 3.3,
                        "sw": 0.1}
        diagnosis = regulator_engine.diagnose_measurements(conditions, measurements)
        assert diagnosis.suspects == ["enbsw"]

    def test_rank_and_top_candidate(self, regulator_engine):
        diagnosis = regulator_engine.diagnose(PAPER_DIAGNOSTIC_CASES[1])
        assert diagnosis.top_candidate() == "enb13"
        assert diagnosis.rank_of("enb13") == 1
        with pytest.raises(DiagnosisError):
            diagnosis.rank_of("reg1")  # observable, not an internal candidate

    def test_ranked_candidates_sorted(self, regulator_engine):
        diagnosis = regulator_engine.diagnose(PAPER_DIAGNOSTIC_CASES[0])
        probabilities = [p for _, p in diagnosis.ranked_candidates]
        assert probabilities == sorted(probabilities, reverse=True)


class TestReports:
    def test_table7_style_report(self, regulator_built_model, regulator_engine):
        initial = regulator_engine.initial_probabilities()
        diagnoses = [regulator_engine.diagnose(case)
                     for case in PAPER_DIAGNOSTIC_CASES[:2]]
        report = DiagnosticReport(regulator_built_model, initial, diagnoses)
        text = report.to_text()
        assert "warnvpst" in text
        assert "d1.(%)" in text
        rows = report.rows()
        # One row per (variable, state) pair.
        expected_rows = sum(regulator_built_model.description.cardinalities().values())
        assert len(rows) == expected_rows

    def test_report_probability_lookup(self, regulator_built_model,
                                       regulator_engine):
        initial = regulator_engine.initial_probabilities()
        diagnosis = regulator_engine.diagnose(PAPER_DIAGNOSTIC_CASES[1])
        report = DiagnosticReport(regulator_built_model, initial, [diagnosis])
        assert report.probability("d2", "reg4", "1") == pytest.approx(1.0)
        with pytest.raises(DiagnosisError):
            report.probability("d9", "reg4", "1")

    def test_case_summary_table(self, regulator_engine):
        diagnoses = [regulator_engine.diagnose(case)
                     for case in PAPER_DIAGNOSTIC_CASES]
        text = case_summary_table(PAPER_DIAGNOSTIC_CASES, diagnoses)
        assert "d4" in text
        assert "lcbg" in text


class TestMetrics:
    def test_metrics_from_diagnoses(self, regulator_engine):
        diagnoses = [regulator_engine.diagnose(case)
                     for case in PAPER_DIAGNOSTIC_CASES]
        true_blocks = ["hcbg", "enb13", "warnvpst", "lcbg", "enbsw"]
        metrics = DiagnosisMetrics.from_diagnoses(diagnoses, true_blocks)
        summary = metrics.summary()
        assert summary["devices"] == 5
        assert 0.0 <= summary["top1_accuracy"] <= 1.0
        assert summary["top3_accuracy"] >= summary["top1_accuracy"]
        assert summary["mean_rank"] >= 1.0

    def test_mismatched_lengths_rejected(self, regulator_engine):
        diagnosis = regulator_engine.diagnose(PAPER_DIAGNOSTIC_CASES[0])
        with pytest.raises(DiagnosisError):
            DiagnosisMetrics.from_diagnoses([diagnosis], ["hcbg", "lcbg"])

    def test_empty_metrics_raise(self):
        with pytest.raises(DiagnosisError):
            DiagnosisMetrics().summary()
