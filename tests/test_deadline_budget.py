"""Deadline-budget edge cases of the robust fallback chain.

The per-request wall-clock budget (``RobustDiagnosisEngine.diagnose(case,
deadline=...)`` and the draining per-batch variant behind
``diagnose_batch(..., deadline=...)``) interacts with three other clocks:
the policy's per-attempt deadline, the retry backoff schedule, and the
attempt itself.  These tests pin the edges: budgets that are already zero
or negative, budgets that expire in the middle of an attempt, and budgets
shorter than a single backoff interval must all fail fast with a
structured :class:`~repro.exceptions.DeadlineExceededError` — never sleep
past their budget, and never lose the attempt trail.
"""

from __future__ import annotations

import time

import pytest

from repro.core import Dlog2BBN, FallbackPolicy, RobustDiagnosisEngine
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
from repro.exceptions import DeadlineExceededError, InferenceTimeoutError
from repro.testing import FaultInjector

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.DegradedResultWarning")

CASE = PAPER_DIAGNOSTIC_CASES[0]


@pytest.fixture(scope="module")
def built_model(regulator_circuit):
    builder = Dlog2BBN(regulator_circuit.model,
                       regulator_circuit.healthy_states)
    return builder.build()


def make_engine(built_model, **policy_overrides) -> RobustDiagnosisEngine:
    defaults = dict(chain=("ve", "lw"), num_samples=500, seed=3)
    defaults.update(policy_overrides)
    return RobustDiagnosisEngine(built_model, FallbackPolicy(**defaults))


class TestExhaustedBeforeStart:
    @pytest.mark.parametrize("deadline", [0.0, -1.0, -0.001])
    def test_nonpositive_budget_fails_immediately(self, built_model,
                                                  deadline):
        engine = make_engine(built_model)
        started = time.perf_counter()
        with pytest.raises(DeadlineExceededError) as excinfo:
            engine.diagnose(CASE, deadline=deadline)
        assert time.perf_counter() - started < 1.0
        error = excinfo.value
        assert error.remaining is not None and error.remaining <= 0
        assert error.attempts == ()          # no engine was ever tried
        assert error.wall_time >= 0.0

    def test_nonpositive_budget_is_an_inference_timeout(self, built_model):
        # DeadlineExceededError must stay catchable as the existing
        # per-attempt timeout type, so older handlers keep working.
        engine = make_engine(built_model)
        with pytest.raises(InferenceTimeoutError):
            engine.diagnose(CASE, deadline=-1.0)

    def test_none_deadline_keeps_plain_behaviour(self, built_model):
        engine = make_engine(built_model)
        diagnosis = engine.diagnose(CASE, deadline=None)
        assert diagnosis.ok
        assert not diagnosis.provenance.degraded


class TestExpiresMidAttempt:
    def test_attempt_is_cut_at_the_remaining_budget(self, built_model):
        # The attempt would take 1.5s; the request budget is 0.3s.  The
        # attempt must be abandoned at ~0.3s and the chain aborted with the
        # budget error, the timed-out attempt on its trail.
        engine = make_engine(built_model)
        with FaultInjector() as chaos:
            chaos.add_latency(engine._engine, "posteriors", 1.5)
            started = time.perf_counter()
            with pytest.raises(DeadlineExceededError) as excinfo:
                engine.diagnose(CASE, deadline=0.3)
            elapsed = time.perf_counter() - started
        assert elapsed < 1.2, "attempt was not cut at the budget"
        error = excinfo.value
        assert error.remaining <= 0
        assert [a.outcome for a in error.attempts] == ["timeout"]
        assert error.attempts[0].engine == "ve"
        assert isinstance(error.__cause__, InferenceTimeoutError)

    def test_request_budget_clamps_a_looser_policy_deadline(self,
                                                            built_model):
        # Policy allows 60s per attempt; the request only has 0.25s left —
        # the tighter clock must win.
        engine = make_engine(built_model, deadline=60.0)
        with FaultInjector() as chaos:
            chaos.add_latency(engine._engine, "posteriors", 1.5)
            started = time.perf_counter()
            with pytest.raises(DeadlineExceededError):
                engine.diagnose(CASE, deadline=0.25)
            assert time.perf_counter() - started < 1.2

    def test_policy_deadline_still_wins_when_tighter(self, built_model):
        # The converse: a huge request budget must not loosen the policy's
        # own 0.2s per-attempt deadline; the chain degrades to the sampler
        # exactly as it would without a request deadline.
        engine = make_engine(built_model, deadline=0.2)
        with FaultInjector() as chaos:
            chaos.add_latency(engine._engine, "posteriors", 1.5)
            diagnosis = engine.diagnose(CASE, deadline=120.0)
        assert diagnosis.ok
        assert diagnosis.provenance.degraded
        assert diagnosis.provenance.engine == "lw"
        assert diagnosis.provenance.attempts[0].outcome == "timeout"


class TestBackoffInteraction:
    def test_budget_shorter_than_one_backoff_interval(self, built_model):
        # backoff=30s, budget=0.3s: the retry sleep must be clamped to the
        # remaining budget (not slept in full) and then the budget check
        # must fire.  The whole call stays near 0.3s, nowhere near 30s.
        engine = make_engine(built_model, chain=("ve",),
                            attempts_per_engine=3, backoff=30.0)
        with FaultInjector() as chaos:
            chaos.raise_on_call(engine._engine, "posteriors")
            started = time.perf_counter()
            with pytest.raises(DeadlineExceededError) as excinfo:
                engine.diagnose(CASE, deadline=0.3)
            elapsed = time.perf_counter() - started
        assert elapsed < 5.0, f"slept past the budget: {elapsed:.1f}s"
        assert elapsed >= 0.25          # the clamped sleep still drained it
        error = excinfo.value
        assert [a.outcome for a in error.attempts] == ["error"]

    def test_backoff_untouched_without_request_deadline(self, built_model):
        # Sanity: the clamp only applies when a budget exists.
        engine = make_engine(built_model, chain=("ve", "lw"),
                            attempts_per_engine=2, backoff=0.05)
        with FaultInjector() as chaos:
            chaos.raise_on_call(engine._engine, "posteriors")
            diagnosis = engine.diagnose(CASE)
        assert diagnosis.ok
        assert diagnosis.provenance.degraded


class TestDrainingBatchBudget:
    def test_batch_budget_drains_across_cases(self, built_model):
        # Four slow cases against a budget that fits roughly one: every
        # slot must come back (collect mode), the tail as fast structured
        # deadline failures, and the batch must not overrun its budget by
        # more than one attempt.
        engine = make_engine(built_model, chain=("ve",))
        cases = [CASE] * 4
        with FaultInjector() as chaos:
            chaos.add_latency(engine._engine, "posteriors", 0.2)
            started = time.perf_counter()
            results = engine.diagnose_batch(cases, on_error="collect",
                                            deadline=0.3)
            elapsed = time.perf_counter() - started
        assert len(results) == 4
        kinds = [getattr(r, "error_type", "ok") for r in results]
        assert set(kinds) <= {"ok", "FallbackExhaustedError",
                              "DeadlineExceededError"}
        assert kinds[-1] == "DeadlineExceededError"
        assert elapsed < 2.0

    def test_expired_batch_budget_fails_every_case_fast(self, built_model):
        engine = make_engine(built_model)
        started = time.perf_counter()
        results = engine.diagnose_batch([CASE] * 50, on_error="collect",
                                        deadline=1e-9)
        assert time.perf_counter() - started < 5.0
        assert len(results) == 50
        assert {r.error_type for r in results} == {"DeadlineExceededError"}

    def test_deadline_failures_keep_attempt_trails(self, built_model):
        engine = make_engine(built_model, chain=("ve", "lw"))
        with FaultInjector() as chaos:
            chaos.add_latency(engine._engine, "posteriors", 1.5)
            results = engine.diagnose_batch([CASE], on_error="collect",
                                            deadline=0.3)
        failure = results[0]
        assert failure.error_type == "DeadlineExceededError"
        assert failure.wall_time > 0
        assert [a.outcome for a in failure.attempts] == ["timeout"]
