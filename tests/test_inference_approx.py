"""Approximate-inference tests: likelihood weighting and Gibbs sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesnet import GibbsSampling, LikelihoodWeighting, VariableElimination
from repro.exceptions import InferenceError


class TestLikelihoodWeighting:
    def test_close_to_exact(self, sprinkler_network):
        evidence = {"wet": "1"}
        exact = VariableElimination(sprinkler_network).posterior("rain", evidence)
        approx = LikelihoodWeighting(sprinkler_network, num_samples=20000,
                                     seed=1).posterior("rain", evidence)
        assert abs(exact["1"] - approx["1"]) < 0.02

    def test_no_evidence_matches_prior(self, sprinkler_network):
        exact = VariableElimination(sprinkler_network).posterior("cloudy")
        approx = LikelihoodWeighting(sprinkler_network, num_samples=20000,
                                     seed=2).posterior("cloudy")
        assert abs(exact["0"] - approx["0"]) < 0.02

    def test_reproducible_with_seed(self, sprinkler_network):
        first = LikelihoodWeighting(sprinkler_network, 500, seed=3).posterior(
            "rain", {"wet": "1"})
        second = LikelihoodWeighting(sprinkler_network, 500, seed=3).posterior(
            "rain", {"wet": "1"})
        assert first == second

    def test_posteriors_multi(self, sprinkler_network):
        result = LikelihoodWeighting(sprinkler_network, 2000, seed=4).posteriors(
            ["rain", "sprinkler"], {"wet": "1"})
        assert set(result) == {"rain", "sprinkler"}
        for distribution in result.values():
            assert np.isclose(sum(distribution.values()), 1.0)

    def test_invalid_sample_count(self, sprinkler_network):
        with pytest.raises(InferenceError):
            LikelihoodWeighting(sprinkler_network, num_samples=0)

    def test_query_evidence_overlap_raises(self, sprinkler_network):
        engine = LikelihoodWeighting(sprinkler_network, 100, seed=5)
        with pytest.raises(InferenceError):
            engine.query(["wet"], {"wet": "1"})


class TestGibbsSampling:
    def test_close_to_exact(self, sprinkler_network):
        evidence = {"wet": "1"}
        exact = VariableElimination(sprinkler_network).posterior("rain", evidence)
        approx = GibbsSampling(sprinkler_network, num_samples=4000, burn_in=300,
                               seed=6).posterior("rain", evidence)
        assert abs(exact["1"] - approx["1"]) < 0.05

    def test_sample_respects_evidence(self, sprinkler_network):
        samples = GibbsSampling(sprinkler_network, num_samples=50, burn_in=10,
                                seed=7).sample({"wet": "1"})
        assert all(sample["wet"] == 1 for sample in samples)

    def test_posteriors_normalised(self, sprinkler_network):
        result = GibbsSampling(sprinkler_network, num_samples=500, burn_in=50,
                               seed=8).posteriors(["rain", "cloudy"], {"wet": "1"})
        for distribution in result.values():
            assert np.isclose(sum(distribution.values()), 1.0)

    def test_invalid_parameters(self, sprinkler_network):
        with pytest.raises(InferenceError):
            GibbsSampling(sprinkler_network, num_samples=0)
        with pytest.raises(InferenceError):
            GibbsSampling(sprinkler_network, num_samples=10, thin=0)
