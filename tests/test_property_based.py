"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bayesnet import BayesianNetwork, TabularCPD, VariableElimination
from repro.bayesnet.factor import DiscreteFactor
from repro.core.states import StateDefinition, StateTable
from repro.utils.validation import check_probability_vector


# ------------------------------------------------------------------ strategies
@st.composite
def factors(draw, prefix: str = "v"):
    """Random small factors over up to three variables."""
    num_vars = draw(st.integers(min_value=1, max_value=3))
    names = [f"{prefix}{i}" for i in range(num_vars)]
    cards = [draw(st.integers(min_value=2, max_value=3)) for _ in names]
    size = int(np.prod(cards))
    values = draw(st.lists(st.floats(min_value=0.01, max_value=10.0),
                           min_size=size, max_size=size))
    return DiscreteFactor(names, cards, np.array(values))


@st.composite
def chain_networks(draw):
    """Random-parameter three-node chain networks a -> b -> c."""
    def column(card):
        raw = draw(st.lists(st.floats(min_value=0.05, max_value=1.0),
                            min_size=card, max_size=card))
        total = sum(raw)
        return [value / total for value in raw]

    network = BayesianNetwork([("a", "b"), ("b", "c")])
    network.add_cpd(TabularCPD("a", 2, np.array(column(2)).reshape(2, 1)))
    network.add_cpd(TabularCPD("b", 2, np.array([column(2), column(2)]).T,
                               ["a"], [2]))
    network.add_cpd(TabularCPD("c", 2, np.array([column(2), column(2)]).T,
                               ["b"], [2]))
    return network


# ---------------------------------------------------------------------- factors
class TestFactorProperties:
    @given(factors())
    @settings(max_examples=40, deadline=None)
    def test_normalize_sums_to_one(self, factor):
        assert np.isclose(factor.normalize().values.sum(), 1.0)

    @given(factors())
    @settings(max_examples=40, deadline=None)
    def test_marginalizing_everything_equals_total(self, factor):
        total = factor.marginalize(list(factor.variables))
        assert np.isclose(float(total.values), factor.values.sum())

    @given(factors(), factors(prefix="w"))
    @settings(max_examples=30, deadline=None)
    def test_product_is_commutative(self, left, right):
        # Distinct name prefixes avoid sharing a variable with conflicting
        # cardinalities, which the product correctly rejects.
        assert left.product(right).is_close_to(right.product(left))

    @given(factors())
    @settings(max_examples=40, deadline=None)
    def test_product_with_identity_preserves_values(self, factor):
        identity = DiscreteFactor([], [], np.array(1.0))
        assert factor.product(identity).is_close_to(factor)

    @given(factors())
    @settings(max_examples=40, deadline=None)
    def test_reduce_then_marginalize_consistency(self, factor):
        variable = factor.variables[0]
        # Summing the reduced slices over all states equals marginalising.
        slices = [factor.reduce({variable: index}).values
                  for index in range(factor.cardinality(variable))]
        assert np.allclose(np.sum(slices, axis=0),
                           factor.marginalize([variable]).values)


# --------------------------------------------------------------------- networks
class TestInferenceProperties:
    @given(chain_networks(), st.sampled_from(["0", "1"]))
    @settings(max_examples=25, deadline=None)
    def test_posterior_is_probability_vector(self, network, evidence_state):
        engine = VariableElimination(network)
        posterior = engine.posterior("a", {"c": evidence_state})
        check_probability_vector(list(posterior.values()))

    @given(chain_networks())
    @settings(max_examples=25, deadline=None)
    def test_marginal_consistency_with_joint(self, network):
        engine = VariableElimination(network)
        joint = network.joint_distribution()
        for node in network.nodes:
            expected = joint.marginalize(
                [v for v in joint.variables if v != node]).to_distribution()
            actual = engine.posterior(node)
            for state, probability in expected.items():
                assert np.isclose(actual[state], probability, atol=1e-9)

    @given(chain_networks())
    @settings(max_examples=25, deadline=None)
    def test_evidence_probabilities_sum_to_one(self, network):
        engine = VariableElimination(network)
        total = sum(engine.probability_of_evidence({"c": state})
                    for state in ("0", "1"))
        assert np.isclose(total, 1.0)


# ----------------------------------------------------------------------- states
class TestStateTableProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=20.0), min_size=3,
                    max_size=6, unique=True),
           st.floats(min_value=-5.0, max_value=25.0))
    @settings(max_examples=60, deadline=None)
    def test_classify_always_returns_a_defined_label(self, boundaries, value):
        boundaries = sorted(boundaries)
        states = [StateDefinition(str(i), low, high)
                  for i, (low, high) in enumerate(zip(boundaries, boundaries[1:]))]
        table = StateTable("x", states)
        assert table.classify(value) in table.labels

    @given(st.floats(min_value=0.0, max_value=10.0),
           st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=60, deadline=None)
    def test_values_inside_a_window_classify_to_it(self, lower, width):
        table = StateTable("x", [
            StateDefinition("inside", lower, lower + width),
            StateDefinition("above", lower + width, lower + 2 * width + 1.0),
        ])
        midpoint = lower + width / 2
        assert table.classify(midpoint) == "inside"
