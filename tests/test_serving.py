"""Diagnosis service: pool management, backpressure, deadlines, stats.

Covers the supervisor's healthy-path contract (results in submission order,
parity with the bare engine, accounting that always balances) plus the
pieces that are pure state machines and need no processes at all
(:class:`ServiceConfig` validation, :class:`CircuitBreaker`,
:class:`LatencyWindow`).  Injected-failure scenarios live in
``test_serving_chaos.py``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import Dlog2BBN, FallbackPolicy
from repro.core.diagnosis import DiagnosisEngine, chunk_slices
from repro.core.paper_cases import PAPER_DIAGNOSTIC_CASES
from repro.exceptions import (
    DiagnosisError,
    ServiceOverloadedError,
    ServiceShutdownError,
    ServingError,
)
from repro.serving import (
    CircuitBreaker,
    DiagnosisService,
    LatencyWindow,
    ServiceConfig,
    ServiceStats,
    adapt_chunk_size,
)
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN
from repro.testing import WorkerChaos


@pytest.fixture(scope="module")
def built_model(regulator_circuit):
    builder = Dlog2BBN(regulator_circuit.model,
                       regulator_circuit.healthy_states)
    return builder.build()


@pytest.fixture(scope="module")
def cases():
    return list(PAPER_DIAGNOSTIC_CASES)


def make_service(built_model, **overrides) -> DiagnosisService:
    defaults = dict(num_workers=2, chunk_size=2)
    defaults.update(overrides)
    return DiagnosisService(built_model, FallbackPolicy(),
                            ServiceConfig(**defaults))


# ---------------------------------------------------------------------------
# Pure components
# ---------------------------------------------------------------------------

class TestServiceConfig:
    def test_defaults_resolve(self):
        config = ServiceConfig()
        assert config.resolved_workers() >= 1
        assert config.chaos_for(0) is None

    @pytest.mark.parametrize("kwargs", [
        {"num_workers": 0},
        {"chunk_size": 0},
        {"max_pending_cases": 0},
        {"overload_policy": "explode"},
        {"submit_timeout": -1.0},
        {"chunk_timeout": 0.0},
        {"deadline_grace": -0.1},
        {"max_chunk_retries": -1},
        {"max_respawns_per_worker": -1},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ServingError):
            ServiceConfig(**kwargs)

    def test_chaos_mapping_is_per_worker(self):
        plan = WorkerChaos(kill_on_chunk=1)
        config = ServiceConfig(chaos={1: plan})
        assert config.chaos_for(0) is None
        assert config.chaos_for(1) is plan

    def test_chaos_scalar_applies_to_all(self):
        plan = WorkerChaos(slow_per_case=0.1)
        config = ServiceConfig(chaos=plan)
        assert config.chaos_for(0) is plan
        assert config.chaos_for(7) is plan


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(threshold=3, cooldown=1.0)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=0.1)
        assert breaker.state == CLOSED and breaker.allows_dispatch()
        breaker.record_failure(now=0.2)
        assert breaker.state == OPEN
        assert not breaker.allows_dispatch()
        assert breaker.quarantined

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure(now=0.0)
        breaker.record_success()
        breaker.record_failure(now=1.0)
        assert breaker.state == CLOSED

    def test_probe_reinstates(self):
        breaker = CircuitBreaker(threshold=1, cooldown=5.0)
        breaker.record_failure(now=0.0)
        assert not breaker.probe_due(now=4.9)
        assert breaker.next_transition() == pytest.approx(5.0)
        assert breaker.probe_due(now=5.0)
        breaker.begin_probe()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allows_dispatch()

    def test_failed_probe_doubles_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, max_cooldown=3.0)
        breaker.record_failure(now=0.0)        # open until 1.0
        breaker.begin_probe()
        breaker.record_failure(now=1.0)        # reopen, cooldown 2.0
        assert breaker.state == OPEN
        assert breaker.next_transition() == pytest.approx(3.0)
        breaker.begin_probe()
        breaker.record_failure(now=3.0)        # capped at max_cooldown 3.0
        assert breaker.next_transition() == pytest.approx(6.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)


class TestLatencyWindow:
    def test_empty_has_no_percentiles(self):
        assert LatencyWindow().percentile(50.0) is None

    def test_single_sample(self):
        window = LatencyWindow()
        window.record(0.25)
        assert window.percentile(50.0) == pytest.approx(0.25)
        assert window.percentile(99.0) == pytest.approx(0.25)

    def test_interpolated_percentiles(self):
        window = LatencyWindow()
        for value in (1.0, 2.0, 3.0, 4.0):
            window.record(value)
        assert window.percentile(0.0) == pytest.approx(1.0)
        assert window.percentile(50.0) == pytest.approx(2.5)
        assert window.percentile(100.0) == pytest.approx(4.0)

    def test_bounded(self):
        window = LatencyWindow(maxlen=4)
        for value in range(100):
            window.record(float(value))
        assert len(window) == 4
        assert window.percentile(0.0) == pytest.approx(96.0)


# ---------------------------------------------------------------------------
# Healthy-path service behaviour
# ---------------------------------------------------------------------------

class TestHealthyPath:
    def test_matches_the_bare_engine(self, built_model, cases):
        reference = DiagnosisEngine(built_model).diagnose_batch(cases)
        with make_service(built_model) as service:
            served = service.diagnose_batch(cases, timeout=120)
        assert len(served) == len(reference)
        for ours, theirs in zip(served, reference):
            assert ours.ok and theirs.ok
            assert ours.case_name == theirs.case_name
            assert ours.ranked_candidates[0][0] == theirs.ranked_candidates[0][0]
            for variable, distribution in theirs.posteriors.items():
                for state, probability in distribution.items():
                    assert ours.posteriors[variable][state] == \
                        pytest.approx(probability, abs=1e-9)

    def test_results_keep_submission_order(self, built_model, cases):
        batch = [dataclasses.replace(cases[index % len(cases)],
                                     name=f"case-{index:03d}")
                 for index in range(10)]
        with make_service(built_model, chunk_size=3) as service:
            results = service.diagnose_batch(batch, timeout=120)
        assert [r.case_name for r in results] == [c.name for c in batch]

    def test_raw_evidence_mappings_are_wrapped(self, built_model, cases):
        evidence = [dict(case.observable_states) for case in cases[:3]]
        with make_service(built_model) as service:
            results = service.diagnose_batch(
                evidence, names=["a", "b", "c"], timeout=120)
        assert [r.case_name for r in results] == ["a", "b", "c"]
        assert all(r.ok for r in results)

    def test_name_count_must_match(self, built_model, cases):
        with make_service(built_model) as service:
            with pytest.raises(DiagnosisError):
                service.submit([cases[0]], names=["a", "b"])

    def test_empty_batch_completes_immediately(self, built_model):
        with make_service(built_model) as service:
            future = service.submit([])
            assert future.done()
            assert future.result(0.0) == []

    def test_future_result_timeout(self, built_model, cases):
        chaos = WorkerChaos(slow_per_case=1.0, only_first_generation=False)
        with make_service(built_model, num_workers=1,
                          chaos=chaos) as service:
            future = service.submit(cases[:4])
            with pytest.raises(TimeoutError):
                future.result(0.05)
            results = future.result(120)
        assert all(r.ok for r in results)

    def test_sequential_batches_share_the_pool(self, built_model, cases):
        with make_service(built_model) as service:
            first = service.diagnose_batch(cases[:3], timeout=120)
            second = service.diagnose_batch(cases[2:], timeout=120)
        assert all(r.ok for r in first + second)

    def test_stats_accounting_balances(self, built_model, cases):
        with make_service(built_model) as service:
            service.diagnose_batch(cases, timeout=120)
            stats = service.stats()
        assert stats.submitted == len(cases)
        assert stats.completed + stats.failed == stats.submitted
        assert stats.failed == 0
        assert stats.queue_depth == 0 and stats.in_flight == 0
        assert stats.workers == 2 and stats.workers_alive == 2
        assert stats.chunk_latency_p50 is not None
        assert stats.chunk_latency_p99 >= stats.chunk_latency_p50
        assert stats.uptime > 0

    def test_stats_snapshot_is_json_safe(self, built_model, cases):
        with make_service(built_model) as service:
            service.diagnose_batch(cases[:2], timeout=120)
            snapshot = service.stats().to_dict()
        assert isinstance(snapshot, dict)
        decoded = json.loads(json.dumps(snapshot))
        assert decoded["submitted"] == 2
        assert set(decoded) == {
            field for field in ServiceStats.__dataclass_fields__}

    def test_submit_after_shutdown_raises(self, built_model, cases):
        service = make_service(built_model)
        service.shutdown()
        with pytest.raises(ServiceShutdownError):
            service.submit(cases[:1])

    def test_shutdown_is_idempotent(self, built_model):
        service = make_service(built_model)
        service.shutdown()
        service.shutdown()

    def test_rejects_nonpositive_deadline(self, built_model, cases):
        with make_service(built_model) as service:
            with pytest.raises(DiagnosisError):
                service.submit(cases[:1], deadline=0.0)


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------

class TestBackpressure:
    def test_reject_policy_sheds_with_pressure_numbers(self, built_model,
                                                       cases):
        chaos = WorkerChaos(slow_per_case=0.5, only_first_generation=False)
        with make_service(built_model, num_workers=1, chunk_size=1,
                          max_pending_cases=2, overload_policy="reject",
                          chaos=chaos) as service:
            admitted = []
            with pytest.raises(ServiceOverloadedError) as excinfo:
                for _ in range(8):
                    admitted.append(service.submit(cases[:1]))
            assert excinfo.value.limit == 2
            assert excinfo.value.pending >= 1
            assert service.stats().shed >= 1
            for future in admitted:
                assert all(r.ok for r in future.result(120))

    def test_block_policy_waits_for_capacity(self, built_model, cases):
        chaos = WorkerChaos(slow_per_case=0.05, only_first_generation=False)
        with make_service(built_model, num_workers=2, chunk_size=1,
                          max_pending_cases=2, overload_policy="block",
                          submit_timeout=60.0, chaos=chaos) as service:
            futures = [service.submit(cases[:2]) for _ in range(4)]
            for future in futures:
                assert all(r.ok for r in future.result(120))
            assert service.stats().shed == 0

    def test_block_policy_sheds_after_patience(self, built_model, cases):
        chaos = WorkerChaos(slow_per_case=5.0, only_first_generation=False)
        with make_service(built_model, num_workers=1, chunk_size=1,
                          max_pending_cases=1, overload_policy="block",
                          submit_timeout=0.05, chaos=chaos) as service:
            with pytest.raises(ServiceOverloadedError):
                for _ in range(4):
                    service.submit(cases[:1])
            service.shutdown(drain=False)


# ---------------------------------------------------------------------------
# Deadlines at the service boundary
# ---------------------------------------------------------------------------

class TestServiceDeadlines:
    def test_every_slot_is_ok_or_deadline_failure(self, built_model, cases):
        batch = [cases[index % len(cases)] for index in range(12)]
        with make_service(built_model, chunk_size=2) as service:
            results = service.diagnose_batch(batch, deadline=0.001,
                                             timeout=120)
        assert len(results) == len(batch)
        kinds = {getattr(r, "error_type", "ok") for r in results}
        assert kinds <= {"ok", "DeadlineExceededError"}
        assert "DeadlineExceededError" in kinds

    def test_expired_queued_chunks_never_reach_a_worker(self, built_model,
                                                        cases):
        chaos = WorkerChaos(slow_per_case=0.4, only_first_generation=False)
        with make_service(built_model, num_workers=1, chunk_size=1,
                          chaos=chaos) as service:
            blocker = service.submit(cases[:2])
            results = service.diagnose_batch(cases[:4], deadline=0.15,
                                             timeout=120)
            blocker.result(120)
        failures = [r for r in results if not getattr(r, "ok", False)]
        assert failures, "deadline should expire behind the slow blocker"
        assert {f.error_type for f in failures} == {"DeadlineExceededError"}

    def test_deadline_failures_carry_case_identity(self, built_model, cases):
        chaos = WorkerChaos(slow_per_case=0.4, only_first_generation=False)
        with make_service(built_model, num_workers=1, chunk_size=1,
                          chaos=chaos) as service:
            service.submit(cases[:2])
            results = service.diagnose_batch(cases[:3], deadline=0.1,
                                             timeout=120)
        for case, result in zip(cases[:3], results):
            assert result.case_name == case.name


# ---------------------------------------------------------------------------
# chunk_slices (the service's sharding primitive)
# ---------------------------------------------------------------------------

class TestChunkSlices:
    def test_covers_exactly_once(self):
        pieces = chunk_slices(10, 3)
        seen = [index for piece in pieces
                for index in range(piece.start, piece.stop)]
        assert seen == list(range(10))
        assert [piece.stop - piece.start for piece in pieces] == [3, 3, 3, 1]

    def test_zero_items(self):
        assert chunk_slices(0, 4) == []

    def test_rejects_bad_arguments(self):
        with pytest.raises(DiagnosisError):
            chunk_slices(-1, 4)
        with pytest.raises(DiagnosisError):
            chunk_slices(4, 0)


# ---------------------------------------------------------------------------
# Adaptive chunk sizing
# ---------------------------------------------------------------------------

class TestAdaptChunkSize:
    def test_no_signal_leaves_the_size_alone(self):
        assert adapt_chunk_size(8, None, 1.0, 1, 256) == 8
        assert adapt_chunk_size(8, 0.0, 1.0, 1, 256) == 8
        assert adapt_chunk_size(8, 0.01, None, 1, 256) == 8

    def test_slow_cases_shrink_by_at_most_half(self):
        # p99 of 1s against a 0.1s budget wants chunk size 1; the halving
        # floor steps it down gradually instead.
        assert adapt_chunk_size(8, 1.0, 0.1, 1, 256) == 4
        assert adapt_chunk_size(4, 1.0, 0.1, 1, 256) == 2

    def test_fast_cases_grow_by_at_most_double(self):
        assert adapt_chunk_size(8, 0.0001, 1.0, 1, 256) == 16
        assert adapt_chunk_size(16, 0.0001, 1.0, 1, 256) == 32

    def test_in_range_ideal_is_taken_directly(self):
        # ideal = 0.5 * 1.0 / 0.05 = 10, already within [4, 16].
        assert adapt_chunk_size(8, 0.05, 1.0, 1, 256) == 10

    def test_bounds_always_win(self):
        assert adapt_chunk_size(2, 1.0, 0.01, 4, 256) == 4
        assert adapt_chunk_size(200, 0.0001, 1.0, 1, 256) == 256

    def test_config_validation(self):
        with pytest.raises(ServingError):
            ServiceConfig(min_chunk_size=0)
        with pytest.raises(ServingError):
            ServiceConfig(min_chunk_size=8, max_chunk_size=4)
        with pytest.raises(ServingError):
            ServiceConfig(adaptive_chunking=True, chunk_size=300,
                          max_chunk_size=256)
        with pytest.raises(ServingError):
            ServiceConfig(chunk_latency_target=0.0)

    def test_resolved_latency_target_derives_from_chunk_timeout(self):
        assert ServiceConfig(chunk_latency_target=0.25) \
            .resolved_latency_target() == 0.25
        assert ServiceConfig(chunk_timeout=8.0).resolved_latency_target() \
            == 2.0
        assert ServiceConfig(chunk_timeout=None) \
            .resolved_latency_target() is None


class TestAdaptiveService:
    def test_chunk_size_grows_under_a_loose_budget(self, built_model, cases):
        with make_service(built_model, num_workers=1, chunk_size=2,
                          adaptive_chunking=True, min_chunk_size=1,
                          max_chunk_size=16,
                          chunk_latency_target=30.0) as service:
            service.diagnose_batch(cases * 4, timeout=120)
            stats = service.stats()
        assert stats.chunk_size > 2

    def test_chunk_size_shrinks_under_a_tight_budget(self, built_model,
                                                     cases):
        with make_service(built_model, num_workers=1, chunk_size=8,
                          adaptive_chunking=True, min_chunk_size=1,
                          max_chunk_size=16,
                          chunk_latency_target=1e-6) as service:
            service.diagnose_batch(cases * 4, timeout=120)
            stats = service.stats()
        assert stats.chunk_size == 1

    def test_static_by_default(self, built_model, cases):
        with make_service(built_model, chunk_size=2) as service:
            service.diagnose_batch(cases, timeout=120)
            assert service.stats().chunk_size == 2
